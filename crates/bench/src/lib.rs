//! # reorder-bench
//!
//! Experiment harness regenerating every table and figure of *Measuring
//! Packet Reordering* (Bellardo & Savage, IMC 2002), plus Criterion
//! perf benches for the hot paths.
//!
//! Each `exp_*` binary prints the rows/series the paper reports; see
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! comparison. Binaries honor the `REORDER_SCALE` environment variable
//! (`full` = paper-scale, `quick` = CI-scale; default `std`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use reorder_core::sample::{MeasurementRun, TestConfig};
use reorder_core::scenario::Scenario;
use reorder_core::{ProbeError, Session, TestKind};
use std::sync::mpsc;
use std::thread;

/// Run one registry technique against a scenario's target on port 80 —
/// the one dispatch helper every `exp_*` binary shares (each used to
/// carry its own copy of the same four-armed match). The returned
/// [`MeasurementRun`] keeps per-sample forensics, which the validation
/// experiments need; summarize with
/// [`reorder_core::Measurement::from_run`] when only estimates matter.
pub fn run_technique(
    kind: TestKind,
    sc: &mut Scenario,
    cfg: TestConfig,
) -> Result<MeasurementRun, ProbeError> {
    let mut session = Session::new(&mut sc.prober, sc.target, 80);
    reorder_core::technique(kind, cfg).execute(&mut session)
}

/// Experiment scale, from `REORDER_SCALE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-long, paper-fidelity runs.
    Full,
    /// Default: a few seconds per experiment, same shapes.
    Std,
    /// Smoke-test size.
    Quick,
}

impl Scale {
    /// Read from the environment.
    pub fn from_env() -> Scale {
        match std::env::var("REORDER_SCALE").as_deref() {
            Ok("full") => Scale::Full,
            Ok("quick") => Scale::Quick,
            _ => Scale::Std,
        }
    }

    /// Pick a value per scale.
    pub fn pick<T>(self, full: T, std_: T, quick: T) -> T {
        match self {
            Scale::Full => full,
            Scale::Std => std_,
            Scale::Quick => quick,
        }
    }
}

/// Map `inputs` to outputs on a thread pool. Order of results matches
/// the input order. The closure runs on worker threads, so everything
/// it captures must be `Send + Sync`; per-task state (simulators are
/// single-threaded and `!Send`) is created inside the closure.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let workers = thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let n = inputs.len();
    let mut results: Vec<Option<O>> = Vec::with_capacity(n);
    results.resize_with(n, || None);
    let (tx, rx) = mpsc::channel::<(usize, O)>();
    let tasks: Vec<(usize, I)> = inputs.into_iter().enumerate().collect();
    let queue = parking::Queue::new(tasks);
    thread::scope(|s| {
        for _ in 0..workers.min(n.max(1)) {
            let tx = tx.clone();
            let queue = &queue;
            let f = &f;
            s.spawn(move || {
                while let Some((i, input)) = queue.pop() {
                    let out = f(input);
                    if tx.send((i, out)).is_err() {
                        return;
                    }
                }
            });
        }
        drop(tx);
        for (i, out) in rx {
            results[i] = Some(out);
        }
    });
    results
        .into_iter()
        .map(|o| o.expect("all tasks ran"))
        .collect()
}

/// Tiny internal work queue shared by the scoped worker threads.
mod parking {
    use std::sync::Mutex;

    pub struct Queue<T> {
        items: Mutex<Vec<T>>,
    }

    impl<T> Queue<T> {
        pub fn new(mut items: Vec<T>) -> Self {
            items.reverse(); // pop() yields original order
            Queue {
                items: Mutex::new(items),
            }
        }

        pub fn pop(&self) -> Option<T> {
            self.items.lock().expect("queue poisoned").pop()
        }
    }
}

/// Print a horizontal rule sized to `width`.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Format a probability as a percentage with one decimal.
pub fn pct(p: f64) -> String {
    format!("{:5.1}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let out = parallel_map((0..100).collect(), |x: i32| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_empty() {
        let out: Vec<i32> = parallel_map(Vec::<i32>::new(), |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn scale_picks() {
        assert_eq!(Scale::Full.pick(1, 2, 3), 1);
        assert_eq!(Scale::Std.pick(1, 2, 3), 2);
        assert_eq!(Scale::Quick.pick(1, 2, 3), 3);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.125), " 12.5%");
    }
}
