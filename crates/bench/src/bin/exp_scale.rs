//! `exp_scale` — the campaign perf harness: runs the survey pipeline at
//! scale, measures hosts/sec and events/sec per configuration
//! (including the pooling and connection-reuse ablations), and records
//! the result as `BENCH_campaign.json` so this and future PRs leave a
//! perf trajectory instead of anecdotes.
//!
//! Since campaign format v2 every scale runs *per simulation version*:
//! the full pipeline under `--sim-version` 1 (replayed cross traffic)
//! and 2 (stationary O(1) draws), so the sampler redesign's win is a
//! recorded ratio, not a claim. The ablation arms run under v2 (the
//! default format).
//!
//! * `REORDER_SCALE=quick|std|full` picks 120 / 1000 / 5000 hosts.
//! * `REORDER_BENCH_RUNS=<n>` takes the min-of-n wall time per config
//!   (default 1; the checked-in `BENCH_campaign.json` is blessed with
//!   10 so the recorded trajectory is noise-floored).
//! * `REORDER_BENCH_OUT` overrides the output path.
//! * `REORDER_BENCH_FLOOR=<path>` enables the regression gate: the
//!   floor file holds the worst acceptable full-pipeline hosts/sec per
//!   version for the current scale; the run fails (exit 1) when either
//!   version's throughput lands more than 30% below its floor. CI runs
//!   the quick scale with the checked-in `BENCH_floor.json`.

use reorder_bench::{rule, Scale};
use reorder_campaign::{start, CampaignOptions, CampaignSpec, InProcessRunner};
use reorder_core::scenario::SimVersion;
use reorder_survey::{
    run_campaign, CampaignConfig, CampaignOutcome, PopulationModel, TelemetryMode,
};
use std::fmt::Write as _;
use std::time::Instant;

struct Row {
    name: &'static str,
    hosts: usize,
    wall_s: f64,
    hosts_per_sec: f64,
    events: u64,
    events_per_sec: f64,
}

fn measure(name: &'static str, cfg: &CampaignConfig, runs: usize) -> Row {
    let mut wall = f64::INFINITY;
    let mut events = 0;
    for _ in 0..runs.max(1) {
        let started = Instant::now();
        let out: CampaignOutcome =
            run_campaign(cfg, None::<&mut Vec<u8>>).expect("no sink, no error");
        wall = wall.min(started.elapsed().as_secs_f64());
        // Summary-only configs (the funnel-free path) keep no per-host
        // reports; the summary still accounts for every host.
        let kept = if cfg.keep_reports { cfg.hosts } else { 0 };
        assert_eq!(out.reports.len(), kept);
        assert_eq!(out.summary.hosts, cfg.hosts as u64);
        events = out.events;
    }
    Row {
        name,
        hosts: cfg.hosts,
        wall_s: wall,
        hosts_per_sec: cfg.hosts as f64 / wall,
        events,
        events_per_sec: events as f64 / wall,
    }
}

/// Peak resident set size in kB (Linux `VmHWM`) — a proxy, not a
/// measurement of any single campaign, but enough to catch an
/// allocation blow-up between PRs.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Extract `"key": <number>` from a JSON-ish text without a parser
/// (the floor file is written by this binary, so the shape is fixed).
fn json_number(text: &str, key: &str) -> Option<f64> {
    let at = text.find(&format!("\"{key}\""))?;
    let rest = &text[at..];
    let colon = rest.find(':')?;
    let tail = rest[colon + 1..].trim_start();
    let end = tail
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(tail.len());
    tail[..end].parse().ok()
}

fn main() {
    let scale = Scale::from_env();
    let hosts = scale.pick(5000, 1000, 120);
    let seed = 1u64;
    let workers = 1usize; // fixed for comparable trajectories
    let runs: usize = std::env::var("REORDER_BENCH_RUNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1);
    let base = CampaignConfig {
        hosts,
        workers,
        seed,
        ..CampaignConfig::default()
    };
    let v1 = CampaignConfig {
        sim_version: SimVersion::V1,
        ..base.clone()
    };

    println!(
        "exp_scale: campaign throughput at {hosts} hosts (seed {seed}, 1 worker, \
         min-of-{runs}, v1 = replay, v2 = stationary)"
    );
    rule(84);

    let base_scaling = base.clone();
    let rows = [
        measure("v1_full", &v1.clone(), runs),
        measure(
            "v1_no_baseline",
            &CampaignConfig {
                baseline: false,
                ..v1.clone()
            },
            runs,
        ),
        measure(
            "v1_amenability_only",
            &CampaignConfig {
                amenability_only: true,
                ..v1
            },
            runs,
        ),
        measure("v2_full", &base.clone(), runs),
        measure(
            "v2_no_baseline",
            &CampaignConfig {
                baseline: false,
                ..base.clone()
            },
            runs,
        ),
        measure(
            "v2_amenability_only",
            &CampaignConfig {
                amenability_only: true,
                ..base.clone()
            },
            runs,
        ),
        // Telemetry overhead arm: the same full v2 pipeline with
        // summary-mode instrumentation on — gated against `v2_full`
        // below so observation stays within its ≤5% budget.
        measure(
            "v2_full_telemetry",
            &CampaignConfig {
                telemetry: TelemetryMode::Summary,
                ..base.clone()
            },
            runs,
        ),
        // Chaos arm: the same v2 full pipeline over a 20%-hostile
        // population (all five fault classes) — hostile hosts burn
        // their budget and abort early, so this row tracks what a
        // survey of an uncooperative internet actually costs.
        measure(
            "v2_chaos20",
            &CampaignConfig {
                model: PopulationModel {
                    chaos_ppm: 200_000,
                    ..Default::default()
                },
                ..base.clone()
            },
            runs,
        ),
        // Ablations (v2): each turns one hot-path contribution off.
        measure(
            "v2_full_no_pool",
            &CampaignConfig {
                pool: false,
                ..base.clone()
            },
            runs,
        ),
        measure(
            "v2_full_no_reuse",
            &CampaignConfig {
                reuse: false,
                ..base.clone()
            },
            runs,
        ),
    ];

    println!(
        "{:<20} {:>7} {:>9} {:>11} {:>12} {:>13}",
        "config", "hosts", "wall s", "hosts/sec", "events", "events/sec"
    );
    rule(84);
    for r in &rows {
        println!(
            "{:<20} {:>7} {:>9.3} {:>11.0} {:>12} {:>13.0}",
            r.name, r.hosts, r.wall_s, r.hosts_per_sec, r.events, r.events_per_sec
        );
    }
    // Looked up by name: the speedup ratio and the floor gate must not
    // silently follow a reordering of the rows array.
    let row = |name: &str| {
        rows.iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("missing bench row `{name}`"))
    };
    let v1_full = row("v1_full");
    let v2_full = row("v2_full");
    let speedup = v1_full.wall_s / v2_full.wall_s;
    println!(
        "v2/v1 full-pipeline wall ratio: {:.2}x faster (v1 {:.3}s -> v2 {:.3}s)",
        speedup, v1_full.wall_s, v2_full.wall_s
    );
    // Fraction of the uninstrumented throughput that survives
    // summary-mode telemetry (1.0 = free; the floor gate wants ≥0.95).
    // Measured as alternating off/summary pairs, min-of-n each, so
    // shared-runner drift hits both arms equally — comparing two rows
    // timed minutes apart swings ±40% on a busy box, the paired ratio
    // does not.
    let telemetry_frac = {
        let summary_cfg = CampaignConfig {
            telemetry: TelemetryMode::Summary,
            ..base.clone()
        };
        let time_one = |cfg: &CampaignConfig| {
            let started = Instant::now();
            run_campaign(cfg, None::<&mut Vec<u8>>).expect("no sink, no error");
            started.elapsed().as_secs_f64()
        };
        // Median of the per-pair wall ratios: each ratio cancels
        // whatever drift its own pair saw, and the median discards the
        // pairs an interference spike hit — min-of-n per arm proved
        // ±5% flaky here, which a 0.95 gate cannot afford.
        let mut ratios: Vec<f64> = (0..runs.max(9))
            .map(|_| time_one(&base) / time_one(&summary_cfg))
            .collect();
        ratios.sort_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };
    println!(
        "telemetry overhead (summary vs off, paired): {:.1}% ({:.3} of off throughput)",
        (1.0 - telemetry_frac) * 100.0,
        telemetry_frac
    );

    // Chaos-off overhead: the hostile-host machinery must be free when
    // nobody is hostile. `chaos_ppm: 0` skips the chaos stream
    // entirely; 1 ppm arms it (one extra RNG draw per host, ~0 hostile
    // hosts at this scale), so the pair isolates exactly what arming
    // the feature costs a cooperative campaign. Same paired
    // median-of-ratios discipline as the telemetry arm.
    let chaos_off_frac = {
        let armed = CampaignConfig {
            model: PopulationModel {
                chaos_ppm: 1,
                ..Default::default()
            },
            ..base.clone()
        };
        let time_one = |cfg: &CampaignConfig| {
            let started = Instant::now();
            run_campaign(cfg, None::<&mut Vec<u8>>).expect("no sink, no error");
            started.elapsed().as_secs_f64()
        };
        let mut ratios: Vec<f64> = (0..runs.max(9))
            .map(|_| time_one(&base) / time_one(&armed))
            .collect();
        ratios.sort_by(f64::total_cmp);
        ratios[ratios.len() / 2]
    };
    println!(
        "chaos-off overhead (armed 1ppm vs off, paired): {:.1}% ({:.3} of off throughput)",
        (1.0 - chaos_off_frac) * 100.0,
        chaos_off_frac
    );

    // Orchestration overhead: the same v2 full pipeline driven by the
    // campaign orchestrator — shard planning, in-process supervision,
    // and a sealed checkpoint written at every shard boundary — vs the
    // plain engine call. Same paired median-of-ratios discipline as the
    // telemetry arm: per-pair ratios cancel shared-runner drift, the
    // median discards interference spikes.
    let campaign_shards = 4usize;
    let (campaign_frac, campaign_wall) = {
        let dir =
            std::env::temp_dir().join(format!("reorder_exp_scale_campaign_{}", std::process::id()));
        let spec = CampaignSpec {
            hosts,
            seed,
            samples: base.samples,
            rounds: base.rounds,
            technique: base.technique,
            baseline: base.baseline,
            amenability_only: base.amenability_only,
            gaps_us: base.gaps_us.clone(),
            reuse: base.reuse,
            sim_version: base.sim_version,
            shards: campaign_shards,
            jsonl: false,
            // Chaos off, default per-host budget: the overhead arm
            // times orchestration, not hostile-host handling.
            ..CampaignSpec::default()
        };
        let opts = CampaignOptions {
            inflight: 1, // serial shards, comparable to the 1-worker engine call
            ..CampaignOptions::default()
        };
        let runner = InProcessRunner {
            workers,
            telemetry: TelemetryMode::Off,
        };
        let time_plain = |cfg: &CampaignConfig| {
            let started = Instant::now();
            run_campaign(cfg, None::<&mut Vec<u8>>).expect("no sink, no error");
            started.elapsed().as_secs_f64()
        };
        let orchestrated = |wall_min: &mut f64| {
            let _ = std::fs::remove_dir_all(&dir);
            let started = Instant::now();
            let report = start(&dir, spec.clone(), &opts, &runner).expect("orchestrated run");
            let wall = started.elapsed().as_secs_f64();
            assert!(!report.interrupted && report.failed.is_empty());
            assert_eq!(report.checkpoint.agg.summary.hosts, hosts as u64);
            *wall_min = wall_min.min(wall);
            wall
        };
        let mut wall_min = f64::INFINITY;
        let mut ratios: Vec<f64> = (0..runs.max(9))
            .map(|_| time_plain(&base) / orchestrated(&mut wall_min))
            .collect();
        ratios.sort_by(f64::total_cmp);
        let _ = std::fs::remove_dir_all(&dir);
        (ratios[ratios.len() / 2], wall_min)
    };
    println!(
        "campaign orchestration overhead ({campaign_shards} shards, checkpoint per shard, \
         paired): {:.1}% ({:.3} of plain throughput, best {:.3}s)",
        (1.0 - campaign_frac) * 100.0,
        campaign_frac,
        campaign_wall
    );
    let rss = peak_rss_kb();
    if let Some(kb) = rss {
        println!("peak RSS (VmHWM proxy): {} kB", kb);
    }

    // Multi-core scaling: the same v2 full pipeline, summary-only
    // (`keep_reports: false`, no sink), which takes the funnel-free
    // sharded-fold path — per-worker aggregators, no id-order reorder
    // buffer — at increasing worker counts. Recorded per worker count
    // so the scaling curve is a trajectory, not a claim.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!();
    println!("scaling (v2 full, summary-only / funnel-free; {cores} core(s) available):");
    rule(84);
    let scaling: Vec<(usize, Row)> = [
        ("scale_w1", 1),
        ("scale_w2", 2),
        ("scale_w4", 4),
        ("scale_w8", 8),
    ]
    .into_iter()
    .map(|(name, w)| {
        let cfg = CampaignConfig {
            workers: w,
            keep_reports: false,
            ..base_scaling.clone()
        };
        (w, measure(name, &cfg, runs))
    })
    .collect();
    println!(
        "{:<20} {:>7} {:>9} {:>11} {:>13}",
        "workers", "hosts", "wall s", "hosts/sec", "vs 1 worker"
    );
    rule(84);
    let w1_rate = scaling[0].1.hosts_per_sec;
    for (w, r) in &scaling {
        println!(
            "{:<20} {:>7} {:>9.3} {:>11.0} {:>12.2}x",
            w,
            r.hosts,
            r.wall_s,
            r.hosts_per_sec,
            r.hosts_per_sec / w1_rate
        );
    }

    // One traced run (summary telemetry, multi-worker where the box
    // allows) for the phase/worker breakdown the JSON record embeds —
    // separate from the perf rows above so instrumentation never
    // contaminates the recorded throughput trajectory.
    let traced_workers = cores.min(4);
    let traced_cfg = CampaignConfig {
        workers: traced_workers,
        keep_reports: false,
        telemetry: TelemetryMode::Summary,
        ..base_scaling
    };
    let traced_started = Instant::now();
    let traced = run_campaign(&traced_cfg, None::<&mut Vec<u8>>).expect("no sink, no error");
    let traced_wall = traced_started.elapsed().as_secs_f64();
    let merged = traced.telemetry.merged();
    println!();
    println!("phase breakdown ({traced_workers} worker(s), summary telemetry):");
    rule(84);
    println!(
        "{:<16} {:>9} {:>11} {:>13}",
        "span", "count", "total s", "mean ms"
    );
    rule(84);
    for (key, s) in merged.spans() {
        println!(
            "{:<16} {:>9} {:>11.3} {:>13.4}",
            key,
            s.count(),
            s.total_secs(),
            s.secs.mean() * 1e3
        );
    }
    let telemetry_doc = traced.telemetry.to_json(
        traced.summary.hosts,
        seed,
        traced.events,
        traced.stats.steals,
        traced_wall,
    );

    // Emit the JSON record.
    let mut json = String::new();
    let _ = write!(
        json,
        "{{\n  \"scale\": \"{}\",\n  \"hosts\": {hosts},\n  \"seed\": {seed},\n  \"workers\": {workers},\n  \"peak_rss_kb\": {},\n  \"v2_speedup_over_v1\": {speedup:.2},\n  \"configs\": {{\n",
        scale.pick("full", "std", "quick"),
        rss.map_or("null".to_string(), |k| k.to_string()),
    );
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"{}\": {{\"wall_s\": {:.4}, \"hosts_per_sec\": {:.1}, \"events\": {}, \"events_per_sec\": {:.0}}}{}",
            r.name,
            r.wall_s,
            r.hosts_per_sec,
            r.events,
            r.events_per_sec,
            if i + 1 < rows.len() { "," } else { "" },
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"available_cores\": {cores},");
    json.push_str("  \"scaling\": {\n");
    for (i, (w, r)) in scaling.iter().enumerate() {
        let _ = writeln!(
            json,
            "    \"workers_{w}\": {{\"wall_s\": {:.4}, \"hosts_per_sec\": {:.1}, \"speedup_vs_w1\": {:.2}}}{}",
            r.wall_s,
            r.hosts_per_sec,
            r.hosts_per_sec / w1_rate,
            if i + 1 < scaling.len() { "," } else { "" },
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"telemetry_overhead_frac\": {telemetry_frac:.3},");
    let _ = writeln!(json, "  \"chaos_off_overhead_frac\": {chaos_off_frac:.3},");
    let _ = writeln!(
        json,
        "  \"campaign\": {{\"shards\": {campaign_shards}, \"wall_s\": {campaign_wall:.4}, \
         \"hosts_per_sec\": {:.1}, \"overhead_frac\": {campaign_frac:.3}}},",
        hosts as f64 / campaign_wall
    );
    let _ = writeln!(json, "  \"telemetry\": {}", telemetry_doc.trim_end());
    json.push_str("}\n");
    let out_path =
        std::env::var("REORDER_BENCH_OUT").unwrap_or_else(|_| "BENCH_campaign.json".to_string());
    std::fs::write(&out_path, &json).expect("writing BENCH_campaign.json");
    println!("wrote {out_path}");

    // Regression gate against the checked-in floor, when asked. Both
    // versions are gated: v2 so the stationary sampler's win cannot
    // silently erode, v1 so the frozen replay path stays usable.
    if let Ok(floor_path) = std::env::var("REORDER_BENCH_FLOOR") {
        let floor_text = std::fs::read_to_string(&floor_path)
            .unwrap_or_else(|e| panic!("reading floor {floor_path}: {e}"));
        let mut failed = false;
        for (name, row) in [
            ("v1_full", v1_full),
            ("v2_full", v2_full),
            ("v2_chaos20", row("v2_chaos20")),
        ] {
            let key = format!(
                "{}_{name}_hosts_per_sec",
                scale.pick("full", "std", "quick")
            );
            let floor = json_number(&floor_text, &key)
                .unwrap_or_else(|| panic!("floor {floor_path} missing `{key}`"));
            let got = row.hosts_per_sec;
            let limit = floor * 0.7;
            println!(
                "floor gate [{name}]: {got:.0} hosts/sec vs floor {floor:.0} (fail under {limit:.0})"
            );
            if got < limit {
                eprintln!(
                    "FAIL: {name} pipeline throughput regressed more than 30% below \
                     the floor ({got:.0} < {limit:.0} hosts/sec; floor {floor:.0} from {floor_path})"
                );
                failed = true;
            }
        }
        // Scaling gate: the funnel-free path must never make adding
        // workers a net loss. The floor is a fraction of the summary-only
        // 1-worker rate that the *best* multi-worker run must clear —
        // honest on a 1-core runner (where the best achievable is ~1x
        // minus scheduling overhead) while still catching a contended
        // merge or a reintroduced funnel (which would tank every
        // multi-worker row, not just dent it).
        let frac_key = format!("{}_scaling_floor_frac", scale.pick("full", "std", "quick"));
        if let Some(frac) = json_number(&floor_text, &frac_key) {
            let w1 = scaling[0].1.hosts_per_sec;
            let best = scaling[1..]
                .iter()
                .map(|(_, r)| r.hosts_per_sec)
                .fold(f64::NEG_INFINITY, f64::max);
            let limit = w1 * frac;
            println!(
                "floor gate [scaling]: best multi-worker {best:.0} hosts/sec vs \
                 {frac:.2} x w1 ({w1:.0}) = {limit:.0}"
            );
            if best < limit {
                eprintln!(
                    "FAIL: multi-worker throughput collapsed ({best:.0} < {limit:.0} \
                     hosts/sec; w1 {w1:.0}, frac {frac} from {floor_path})"
                );
                failed = true;
            }
        }
        // Telemetry gate: summary-mode instrumentation must keep at
        // least `frac` of the uninstrumented full-pipeline throughput
        // (the tentpole's ≤5% overhead budget, as a recorded floor
        // rather than a claim). Both rows are min-of-n from the same
        // process, so the ratio is far less runner-noisy than the
        // absolute hosts/sec floors above.
        let tel_key = format!(
            "{}_telemetry_floor_frac",
            scale.pick("full", "std", "quick")
        );
        if let Some(frac) = json_number(&floor_text, &tel_key) {
            println!(
                "floor gate [telemetry]: {telemetry_frac:.3} of off throughput vs floor {frac:.2}"
            );
            if telemetry_frac < frac {
                eprintln!(
                    "FAIL: summary telemetry costs too much ({:.1}% > {:.1}% overhead \
                     budget; frac {frac} from {floor_path})",
                    (1.0 - telemetry_frac) * 100.0,
                    (1.0 - frac) * 100.0,
                );
                failed = true;
            }
        }
        // Campaign gate: orchestration (supervision + a checkpoint per
        // shard boundary) must keep at least `frac` of the plain
        // engine's throughput — the tentpole's ≤5% resume-overhead
        // budget as a recorded floor. Paired median-of-ratios, same
        // noise argument as the telemetry gate.
        let camp_key = format!("{}_campaign_floor_frac", scale.pick("full", "std", "quick"));
        if let Some(frac) = json_number(&floor_text, &camp_key) {
            println!(
                "floor gate [campaign]: {campaign_frac:.3} of plain throughput vs floor {frac:.2}"
            );
            if campaign_frac < frac {
                eprintln!(
                    "FAIL: campaign orchestration costs too much ({:.1}% > {:.1}% overhead \
                     budget; frac {frac} from {floor_path})",
                    (1.0 - campaign_frac) * 100.0,
                    (1.0 - frac) * 100.0,
                );
                failed = true;
            }
        }
        // Chaos-off gate: arming the hostile-host machinery with ~0
        // hostile hosts must keep at least `frac` of the chaos-off
        // throughput — the tentpole's "chaos-off hot path unchanged"
        // claim as a recorded floor (≤1% on the standard row). Same
        // paired median-of-ratios noise argument as the telemetry gate.
        let chaos_key = format!("{}_chaos_floor_frac", scale.pick("full", "std", "quick"));
        if let Some(frac) = json_number(&floor_text, &chaos_key) {
            println!(
                "floor gate [chaos-off]: {chaos_off_frac:.3} of off throughput vs floor {frac:.2}"
            );
            if chaos_off_frac < frac {
                eprintln!(
                    "FAIL: chaos-off overhead too high ({:.1}% > {:.1}% budget; \
                     frac {frac} from {floor_path})",
                    (1.0 - chaos_off_frac) * 100.0,
                    (1.0 - frac) * 100.0,
                );
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
