//! E2 — Figure 5: CDF of reordering rates across all measured paths.
//!
//! §IV-B: 15 hand-picked popular hosts plus 35 random hosts, measured
//! round-robin with all four tests over 20 days ("approximately 850
//! measurements per host per test, where each individual measurement
//! consisted of 15 samples"). Headlines: "over 40% of the paths tested
//! experience some reordering", "more forward path reordering than
//! reverse path reordering", and "more than 15% of measurements had at
//! least one reordered sample".

use reorder_bench::{parallel_map, pct, rule, run_technique, Scale};
use reorder_core::metrics::Cdf;
use reorder_core::sample::TestConfig;
use reorder_core::scenario::{self, HostSpec};
use reorder_core::{ProbeError, TestKind};

struct HostResult {
    name: String,
    /// Mean forward rate per applicable test, then averaged.
    fwd_rate: f64,
    rev_rate: f64,
    measurements: usize,
    measurements_with_event: usize,
    dual_excluded: bool,
}

fn survey_host(spec: HostSpec, rounds: usize, seed: u64) -> HostResult {
    let mut fwd_events = 0usize;
    let mut fwd_total = 0usize;
    let mut rev_events = 0usize;
    let mut rev_total = 0usize;
    let mut measurements = 0usize;
    let mut with_event = 0usize;
    let mut dual_excluded = false;

    let cfg = TestConfig::samples(15);
    // Cycle through the tests, as the paper's prober did. The reversed
    // single-connection variant is the deployable two-sided one.
    let cycle = [
        TestKind::SingleConnectionReversed,
        TestKind::DualConnection,
        TestKind::Syn,
        TestKind::DataTransfer,
    ];
    for round in 0..rounds {
        let round_seed = seed.wrapping_add(round as u64).wrapping_mul(0x9E37_79B9);
        for (test_idx, kind) in cycle.into_iter().enumerate() {
            let mut sc = scenario::internet_host(&spec, round_seed + test_idx as u64);
            let kind_cfg = if kind == TestKind::DataTransfer {
                TestConfig::default() // object size sets the count
            } else {
                cfg
            };
            let run = match run_technique(kind, &mut sc, kind_cfg) {
                Err(ProbeError::HostUnsuitable(_)) if kind == TestKind::DualConnection => {
                    dual_excluded = true;
                    continue;
                }
                other => other,
            };
            let Ok(run) = run else { continue };
            measurements += 1;
            if run.fwd_reordered() + run.rev_reordered() > 0 {
                with_event += 1;
            }
            fwd_events += run.fwd_reordered();
            fwd_total += run.fwd_determinate();
            rev_events += run.rev_reordered();
            rev_total += run.rev_determinate();
        }
    }
    HostResult {
        name: spec.name,
        fwd_rate: if fwd_total == 0 {
            0.0
        } else {
            fwd_events as f64 / fwd_total as f64
        },
        rev_rate: if rev_total == 0 {
            0.0
        } else {
            rev_events as f64 / rev_total as f64
        },
        measurements,
        measurements_with_event: with_event,
        dual_excluded,
    }
}

fn print_cdf(label: &str, cdf: &Cdf) {
    println!("  {label} CDF (rate -> cumulative fraction of paths):");
    for q in [0.25, 0.5, 0.75, 0.9, 1.0] {
        println!(
            "    p{:<3} rate = {}",
            (q * 100.0) as u32,
            pct(cdf.quantile(q))
        );
    }
    for x in [0.0, 0.001, 0.01, 0.05, 0.10, 0.25] {
        println!(
            "    F({:>5}) = {}",
            pct(x).trim(),
            pct(cdf.fraction_at_most(x))
        );
    }
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(40, 8, 2);
    let specs = scenario::population(15, 35, 0xF165);

    println!("E2: reordering-rate CDF across the host population (Fig. 5, §IV-B)");
    println!(
        "    {} hosts ({} popular + {} random), {} rounds x 4 tests x 15 samples",
        specs.len(),
        15,
        35,
        rounds
    );
    rule(84);

    let jobs: Vec<(HostSpec, u64)> = specs
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, 0xE2_0000 + i as u64 * 1000))
        .collect();
    let results = parallel_map(jobs, |(spec, seed)| survey_host(spec, rounds, seed));

    println!(
        "{:<26} {:>9} {:>9} {:>7} {:>9}",
        "host", "fwd-rate", "rev-rate", "meas", "dual?"
    );
    rule(84);
    for r in &results {
        println!(
            "{:<26} {:>9} {:>9} {:>7} {:>9}",
            r.name,
            pct(r.fwd_rate),
            pct(r.rev_rate),
            r.measurements,
            if r.dual_excluded { "excluded" } else { "ok" }
        );
    }
    rule(84);

    let fwd_cdf = Cdf::new(results.iter().map(|r| r.fwd_rate).collect());
    let rev_cdf = Cdf::new(results.iter().map(|r| r.rev_rate).collect());
    print_cdf("forward", &fwd_cdf);
    print_cdf("reverse", &rev_cdf);

    let some_reordering = results
        .iter()
        .filter(|r| r.fwd_rate > 0.0 || r.rev_rate > 0.0)
        .count();
    let total_meas: usize = results.iter().map(|r| r.measurements).sum();
    let meas_with_event: usize = results.iter().map(|r| r.measurements_with_event).sum();
    let mean_fwd: f64 = results.iter().map(|r| r.fwd_rate).sum::<f64>() / results.len() as f64;
    let mean_rev: f64 = results.iter().map(|r| r.rev_rate).sum::<f64>() / results.len() as f64;

    println!();
    println!(
        "paths with some reordering: {}/{} = {}   (paper: >40%)",
        some_reordering,
        results.len(),
        pct(some_reordering as f64 / results.len() as f64)
    );
    println!(
        "mean fwd rate {} vs mean rev rate {}   (paper: fwd > rev)",
        pct(mean_fwd),
        pct(mean_rev)
    );
    println!(
        "measurements with >=1 reordered sample: {}   (paper: >15%)",
        pct(meas_with_event as f64 / total_meas as f64)
    );
    assert!(
        mean_fwd > mean_rev,
        "population built with fwd > rev must measure that way"
    );
}
