//! E4 — Figure 7: reordering probability vs. inter-packet spacing.
//!
//! "Minimum-sized back-to-back packets are reordered more than 10
//! percent of the time, which quickly drops off to less than 2 percent
//! after 50 microseconds of delay is added and approaches zero after
//! 250 microseconds. [...] 1000 samples were taken at each point using
//! 1 usec increments between points for all spacings below 200 usecs,
//! and 20 usec increments thereafter."
//!
//! The path is a 2-way per-packet-striped link with Poisson cross
//! traffic (the physical mechanism §IV-C identifies); the instrument is
//! the Dual Connection Test with its gap parameter. Since campaign
//! format v2 the stripe's backlog comes from the O(1) stationary
//! workload sampler (`scenario::striped_path`'s default
//! `SimVersion`) — the decay curve is statistically unchanged from the
//! v1 replay (asserted by the striping equivalence tests) but each
//! point now costs one draw per probe instead of a burst-history
//! replay.

use reorder_bench::{parallel_map, pct, rule, run_technique, Scale};
use reorder_core::metrics::GapProfile;
use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::TestKind;
use reorder_netsim::pipes::CrossTraffic;
use std::time::Duration;

fn measure_point(gap_us: u64, samples: usize, seed: u64) -> (u64, usize, usize) {
    let mut sc = scenario::striped_path(CrossTraffic::backbone(), seed);
    let cfg = TestConfig {
        samples,
        gap: Duration::from_micros(gap_us),
        pace: Duration::from_millis(2),
        reply_timeout: Duration::from_millis(900),
        ..TestConfig::default()
    };
    let run = run_technique(TestKind::DualConnection, &mut sc, cfg)
        .expect("striped path host is amenable");
    (gap_us, run.fwd_reordered(), run.fwd_determinate())
}

fn main() {
    let scale = Scale::from_env();
    let samples = scale.pick(1000, 300, 50);
    let fine_step = scale.pick(1u64, 5, 25);
    let coarse_step = 20u64;

    let mut gaps: Vec<u64> = (0..200).step_by(fine_step as usize).collect();
    let mut g = 200;
    while g <= 400 {
        gaps.push(g);
        g += coarse_step;
    }

    println!("E4: reordering probability vs inter-packet spacing (Fig. 7, §IV-C)");
    println!(
        "    dual connection test over a 2-way striped 1 Gbit/s path (sim v2, \
         stationary cross traffic), {} samples/point, {} points",
        samples,
        gaps.len()
    );
    rule(72);

    let jobs: Vec<(u64, usize, u64)> = gaps.iter().map(|&g| (g, samples, 0xF16_700 + g)).collect();
    let results = parallel_map(jobs, |(g, n, seed)| measure_point(g, n, seed));

    let mut profile = GapProfile::default();
    println!(
        "{:>8} {:>10} {:>10} {:>9}",
        "gap(us)", "reordered", "samples", "rate"
    );
    rule(72);
    for &(gap_us, reordered, total) in &results {
        let est = reorder_core::metrics::ReorderEstimate::new(reordered, total);
        profile.push(Duration::from_micros(gap_us), est);
        // Print a readable subset: every 10 us in the fine range, all
        // coarse points.
        if gap_us % 10 == 0 {
            println!(
                "{:>8} {:>10} {:>10} {:>9}",
                gap_us,
                reordered,
                total,
                pct(est.rate())
            );
        }
    }
    rule(72);

    let at0 = profile.interpolate(Duration::ZERO);
    let at50 = profile.interpolate(Duration::from_micros(50));
    let at250 = profile.interpolate(Duration::from_micros(250));
    println!("rate at   0 us: {}   (paper: >10%)", pct(at0));
    println!("rate at  50 us: {}   (paper: <2%)", pct(at50));
    println!("rate at 250 us: {}   (paper: ~0%)", pct(at250));

    // The §IV-C punchline: the profile predicts how packet size changes
    // exposure. 1500-byte data packets sent back-to-back have leading
    // edges a full serialization time apart.
    let small = profile.predict_for_size(40, 1_000_000_000);
    let big = profile.predict_for_size(1500, 1_000_000_000);
    println!();
    println!(
        "predicted exchange probability, back-to-back 40B probes:  {}",
        pct(small)
    );
    println!(
        "predicted exchange probability, back-to-back 1500B data:  {}  (why the transfer test under-reports)",
        pct(big)
    );

    assert!(at0 > at50 && at50 >= at250, "profile must decay");
}
