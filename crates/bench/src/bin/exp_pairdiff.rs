//! E5 — §IV-B cross-test consistency via the pair-difference statistic.
//!
//! "With a 99.9% confidence interval we find that the single connection
//! test and the SYN test provide similar results (78% of the forward
//! path tests and 93% of the reverse path tests support the null
//! hypothesis). [...] Finally, the results from the TCP data transfer
//! test closely matched the SYN and dual tests (90%) but was
//! significantly different from the single connection test [...]
//! during periods of significant reordering, the TCP data transfer
//! tests can produce significantly lower estimates of reordering than
//! the other approaches — sometimes less than half as many reordering
//! events."

use reorder_bench::{parallel_map, pct, rule, run_technique, Scale};
use reorder_core::sample::TestConfig;
use reorder_core::scenario::{self, HostSpec};
use reorder_core::stats::pair_difference;
use reorder_core::TestKind;

#[derive(Default, Clone)]
struct HostSeries {
    name: String,
    single_fwd: Vec<f64>,
    single_rev: Vec<f64>,
    dual_fwd: Vec<f64>,
    dual_rev: Vec<f64>,
    syn_fwd: Vec<f64>,
    syn_rev: Vec<f64>,
    transfer_rev: Vec<f64>,
}

fn measure_host(spec: HostSpec, rounds: usize, samples: usize, seed: u64) -> HostSeries {
    let mut hs = HostSeries {
        name: spec.name.clone(),
        ..Default::default()
    };
    let cfg = TestConfig::samples(samples);
    for round in 0..rounds {
        let rs = seed + round as u64 * 101;
        let mut sc = scenario::internet_host(&spec, rs);
        if let Ok(run) = run_technique(TestKind::SingleConnectionReversed, &mut sc, cfg) {
            hs.single_fwd.push(run.fwd_estimate().rate());
            hs.single_rev.push(run.rev_estimate().rate());
        }
        let mut sc = scenario::internet_host(&spec, rs + 1);
        if let Ok(run) = run_technique(TestKind::DualConnection, &mut sc, cfg) {
            hs.dual_fwd.push(run.fwd_estimate().rate());
            hs.dual_rev.push(run.rev_estimate().rate());
        }
        let mut sc = scenario::internet_host(&spec, rs + 2);
        if let Ok(run) = run_technique(TestKind::Syn, &mut sc, cfg) {
            hs.syn_fwd.push(run.fwd_estimate().rate());
            hs.syn_rev.push(run.rev_estimate().rate());
        }
        let mut sc = scenario::internet_host(&spec, rs + 3);
        if let Ok(run) = run_technique(TestKind::DataTransfer, &mut sc, TestConfig::default()) {
            hs.transfer_rev.push(run.rev_estimate().rate());
        }
    }
    hs
}

/// % of hosts whose paired series support the null hypothesis at 99.9%.
fn support_pct(pairs: &[(&Vec<f64>, &Vec<f64>)]) -> (usize, usize) {
    let mut support = 0;
    let mut usable = 0;
    for (a, b) in pairs {
        let n = a.len().min(b.len());
        if n < 3 {
            continue;
        }
        usable += 1;
        if pair_difference(&a[..n], &b[..n], 0.999).supports_null {
            support += 1;
        }
    }
    (support, usable)
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(30, 12, 4);
    let samples = scale.pick(50, 30, 12);
    let specs = scenario::population(15, 35, 0xF165);

    println!("E5: pair-difference consistency between tests (§IV-B, 99.9% CI)");
    println!(
        "    {} hosts, {} rounds per test, {} samples per measurement",
        specs.len(),
        rounds,
        samples
    );
    rule(84);

    let jobs: Vec<(HostSpec, u64)> = specs
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, 0xE5_0000 + i as u64 * 4096))
        .collect();
    let results = parallel_map(jobs, |(spec, seed)| {
        measure_host(spec, rounds, samples, seed)
    });

    let fwd_single_syn = support_pct(
        &results
            .iter()
            .map(|h| (&h.single_fwd, &h.syn_fwd))
            .collect::<Vec<_>>(),
    );
    let rev_single_syn = support_pct(
        &results
            .iter()
            .map(|h| (&h.single_rev, &h.syn_rev))
            .collect::<Vec<_>>(),
    );
    let fwd_dual_syn = support_pct(
        &results
            .iter()
            .map(|h| (&h.dual_fwd, &h.syn_fwd))
            .collect::<Vec<_>>(),
    );
    let rev_dual_single = support_pct(
        &results
            .iter()
            .map(|h| (&h.dual_rev, &h.single_rev))
            .collect::<Vec<_>>(),
    );
    let rev_transfer_syn = support_pct(
        &results
            .iter()
            .map(|h| (&h.transfer_rev, &h.syn_rev))
            .collect::<Vec<_>>(),
    );
    let rev_transfer_dual = support_pct(
        &results
            .iter()
            .map(|h| (&h.transfer_rev, &h.dual_rev))
            .collect::<Vec<_>>(),
    );

    let row = |label: &str, (s, n): (usize, usize), paper: &str| {
        println!(
            "{:<34} {:>3}/{:<3} = {}   (paper: {})",
            label,
            s,
            n,
            pct(if n == 0 { 0.0 } else { s as f64 / n as f64 }),
            paper
        );
    };
    row("fwd: single vs syn", fwd_single_syn, "78% support");
    row("rev: single vs syn", rev_single_syn, "93% support");
    row("fwd: dual vs syn", fwd_dual_syn, "lower similarity");
    row("rev: dual vs single", rev_dual_single, "high similarity");
    row("rev: transfer vs syn", rev_transfer_syn, "~90% support");
    row("rev: transfer vs dual", rev_transfer_dual, "~90% support");
    rule(84);

    // The transfer-test underestimate under heavy reordering: compare
    // mean rates on the most-reordering hosts.
    println!("transfer-test underestimate on heavily reordering paths (rev direction):");
    let mut shown = 0;
    for h in &results {
        let syn_rev = reorder_core::stats::mean(&h.syn_rev);
        let tr_rev = reorder_core::stats::mean(&h.transfer_rev);
        if syn_rev > 0.02 && !h.transfer_rev.is_empty() {
            println!(
                "  {:<26} syn {}  transfer {}  ratio {:.2}",
                h.name,
                pct(syn_rev),
                pct(tr_rev),
                if syn_rev > 0.0 { tr_rev / syn_rev } else { 0.0 }
            );
            shown += 1;
        }
    }
    if shown == 0 {
        println!("  (no host exceeded the 2% threshold this run)");
    }
    println!(
        "(paper: transfer \"sometimes less than half as many reordering events\" — \
         §IV-C attributes this to 1500-byte serialization spreading)"
    );
}
