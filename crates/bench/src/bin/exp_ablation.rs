//! Ablation — one reordering *measurement* against four reordering
//! *mechanisms* (§V: "DiffServ scheduling and buffer management,
//! multi-path routing, layer 2 retransmission ..., or simply ... fine
//! grained data parallelism").
//!
//! The paper's time-domain methodology (§IV-C) claims to characterize
//! the reordering *process*, not just its average. This experiment
//! backs that up: each mechanism leaves a distinct fingerprint in the
//! gap profile —
//!
//! * **striping** (queue imbalance): smooth exponential-like decay;
//! * **multipath** (fixed route skew): a hard step at the skew;
//! * **wireless ARQ** (retry lateness): a step at the retry delay with
//!   a loss floor independent of gap;
//! * **dummynet swap** (adjacent exchange): flat in gap (up to its hold
//!   horizon) — which is why it is a *calibration* device, not a model.

use reorder_bench::{parallel_map, pct, rule, run_technique, Scale};
use reorder_core::metrics::ReorderEstimate;
use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::TestKind;
use reorder_netsim::pipes::{ArqConfig, CrossTraffic, DummynetConfig, DummynetReorder};
use std::time::Duration;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mechanism {
    Striping,
    Multipath,
    WirelessArq,
    Dummynet,
}

impl Mechanism {
    fn label(self) -> &'static str {
        match self {
            Mechanism::Striping => "striping",
            Mechanism::Multipath => "multipath(80us skew)",
            Mechanism::WirelessArq => "wireless-arq(300us retry)",
            Mechanism::Dummynet => "dummynet(p=0.1)",
        }
    }

    fn build(self, seed: u64) -> scenario::Scenario {
        match self {
            Mechanism::Striping => scenario::striped_path(CrossTraffic::backbone(), seed),
            Mechanism::Multipath => scenario::multipath_path(Duration::from_micros(80), seed),
            Mechanism::WirelessArq => scenario::wireless_path(
                ArqConfig {
                    frame_error: 0.10,
                    retry_delay: Duration::from_micros(300),
                    max_retries: 4,
                    in_order_delivery: false,
                },
                seed,
            ),
            Mechanism::Dummynet => scenario::pipe_path(
                Box::new(DummynetReorder::new(
                    DummynetConfig {
                        fwd_swap: 0.1,
                        ..Default::default()
                    },
                    seed,
                    "d",
                )),
                seed,
            ),
        }
    }
}

fn measure(mech: Mechanism, gap_us: u64, samples: usize, seed: u64) -> f64 {
    let mut sc = mech.build(seed);
    let cfg = TestConfig {
        samples,
        gap: Duration::from_micros(gap_us),
        pace: Duration::from_millis(2),
        reply_timeout: Duration::from_millis(900),
        ..TestConfig::default()
    };
    match run_technique(TestKind::DualConnection, &mut sc, cfg) {
        Ok(run) => ReorderEstimate::new(run.fwd_reordered(), run.fwd_determinate()).rate(),
        Err(_) => f64::NAN,
    }
}

fn main() {
    let scale = Scale::from_env();
    let samples = scale.pick(1000, 300, 60);
    let gaps: Vec<u64> = vec![0, 10, 25, 50, 75, 100, 150, 200, 300, 400, 500];
    let mechanisms = [
        Mechanism::Striping,
        Mechanism::Multipath,
        Mechanism::WirelessArq,
        Mechanism::Dummynet,
    ];

    println!("Ablation: gap-profile fingerprints of four reordering mechanisms (§IV-C, §V)");
    println!("    dual connection test, {samples} samples/point");
    rule(92);
    print!("{:>8}", "gap(us)");
    for m in mechanisms {
        print!(" {:>22}", m.label());
    }
    println!();
    rule(92);

    let jobs: Vec<(Mechanism, u64)> = gaps
        .iter()
        .flat_map(|&g| mechanisms.iter().map(move |&m| (m, g)))
        .collect();
    let results = parallel_map(jobs, |(m, g)| {
        (m, g, measure(m, g, samples, 0xAB1A + g * 13))
    });

    for &g in &gaps {
        print!("{g:>8}");
        for m in mechanisms {
            let rate = results
                .iter()
                .find(|&&(rm, rg, _)| rm == m && rg == g)
                .map(|&(_, _, r)| r)
                .unwrap_or(f64::NAN);
            print!(" {:>22}", pct(rate));
        }
        println!();
    }
    rule(92);
    println!("expected fingerprints:");
    println!("  striping   — smooth decay to ~0 (queue imbalance drains)");
    println!("  multipath  — cliff at the 80 us route skew, zero beyond");
    println!("  arq        — near-flat until the 300 us retry delay, then zero");
    println!("  dummynet   — gap-independent (the calibration pipe swaps whatever is adjacent)");
}
