//! E3 — Figure 6: forward-path reordering on a load-balanced site as
//! measured by the Single Connection test and the SYN test.
//!
//! "Figure 6 illustrates the mean reordering rate measured on the path
//! to www.apple.com using the single connection test and the SYN test.
//! [...] The Dual Connection test could not be used because
//! www.apple.com uses a load balancer."
//!
//! The site's reordering rate drifts over time (diurnal load); the two
//! independent tests track the same underlying process.

use reorder_bench::{parallel_map, pct, rule, run_technique, Scale};
use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::{ProbeError, TestKind};
use reorder_tcpstack::HostPersonality;

/// The "true" time-varying swap probability: a diurnal cycle plus a
/// slow drift, like a congested exchange point.
fn true_rate(hour: f64) -> f64 {
    let diurnal = (hour / 24.0 * std::f64::consts::TAU).sin();
    (0.08 + 0.06 * diurnal + 0.02 * (hour / 24.0 * 3.0 * std::f64::consts::TAU).cos()).max(0.0)
}

struct Round {
    hour: f64,
    truth: f64,
    single: f64,
    syn: f64,
}

fn measure_round(hour: f64, samples: usize, seed: u64) -> Round {
    let p = true_rate(hour);
    let cfg = TestConfig::samples(samples);
    // Independent scenario instances at the same instant — the two
    // tests run close together in time, like the paper's round-robin.
    let mut sc = scenario::load_balanced(p, 0.0, 4, HostPersonality::freebsd4(), seed);
    let single = run_technique(TestKind::SingleConnectionReversed, &mut sc, cfg)
        .map(|r| r.fwd_estimate().rate())
        .unwrap_or(f64::NAN);
    let mut sc = scenario::load_balanced(p, 0.0, 4, HostPersonality::freebsd4(), seed + 7);
    let syn = run_technique(TestKind::Syn, &mut sc, cfg)
        .map(|r| r.fwd_estimate().rate())
        .unwrap_or(f64::NAN);
    Round {
        hour,
        truth: p,
        single,
        syn,
    }
}

fn main() {
    let scale = Scale::from_env();
    let rounds = scale.pick(96, 48, 12); // 2h / 1h / 4h spacing over 4 days
    let samples = scale.pick(50, 30, 10);

    println!("E3: single-connection vs SYN test time series on a load-balanced site (Fig. 6)");
    println!("    {rounds} rounds x {samples} samples per test; 4-backend per-flow balancer");
    rule(72);

    // First confirm the premise: the dual test refuses this site.
    let mut refusals = 0;
    for seed in 0..4 {
        let mut sc = scenario::load_balanced(0.05, 0.0, 4, HostPersonality::freebsd4(), 900 + seed);
        if let Err(ProbeError::HostUnsuitable(_)) =
            run_technique(TestKind::DualConnection, &mut sc, TestConfig::samples(5))
        {
            refusals += 1
        }
    }
    println!("dual connection test refused the site in {refusals}/4 attempts (paper: unusable)");
    rule(72);

    let jobs: Vec<(f64, u64)> = (0..rounds)
        .map(|r| (r as f64 * 96.0 / rounds as f64, 0xE3_000 + r as u64 * 31))
        .collect();
    let results = parallel_map(jobs, |(hour, seed)| measure_round(hour, samples, seed));

    println!("{:>7} {:>8} {:>9} {:>9}", "hour", "true", "single", "syn");
    rule(72);
    let mut singles = Vec::new();
    let mut syns = Vec::new();
    for r in &results {
        if r.single.is_nan() || r.syn.is_nan() {
            continue;
        }
        singles.push(r.single);
        syns.push(r.syn);
        println!(
            "{:>7.1} {:>8} {:>9} {:>9}",
            r.hour,
            pct(r.truth),
            pct(r.single),
            pct(r.syn)
        );
    }
    rule(72);

    let pd = reorder_core::stats::pair_difference(&singles, &syns, 0.999);
    println!(
        "pair-difference (single vs syn) mean diff {:+.4}, 99.9% CI [{:+.4}, {:+.4}] -> {}",
        pd.mean_diff,
        pd.ci.0,
        pd.ci.1,
        if pd.supports_null {
            "tests agree (null hypothesis supported)"
        } else {
            "tests disagree"
        }
    );
    // Correlation with the underlying process.
    let truth: Vec<f64> = results
        .iter()
        .filter(|r| !r.single.is_nan() && !r.syn.is_nan())
        .map(|r| r.truth)
        .collect();
    println!(
        "corr(single, truth) = {:.3}, corr(syn, truth) = {:.3}",
        reorder_core::stats::correlation(&singles, &truth),
        reorder_core::stats::correlation(&syns, &truth)
    );
    // The §IV-B caveat quantified: "these measurements can only be
    // considered 'paired' under the assumption that the reordering
    // process is stationary over the time-period between measurements."
    // A diurnal process is NOT stationary across the day — the
    // autocorrelation and runs test should both say so.
    println!(
        "stationarity diagnostics on the single-test series: lag-1 autocorr = {:.2}, runs-test z = {:+.2}",
        reorder_core::stats::autocorrelation(&singles, 1),
        reorder_core::stats::runs_test_z(&singles),
    );
    println!("(a diurnal process is persistent: positive autocorrelation and too few runs)");
}
