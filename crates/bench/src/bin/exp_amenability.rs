//! E6 — §IV-B host amenability to the Dual Connection Test.
//!
//! "Not all tests were able to work with all hosts. In particular, the
//! dual connection test was ruled out due to non-monotonic IPID
//! behavior from 8 hosts (likely due to transparent load balancers) and
//! a constant IPID value of 0 from another 9 hosts (likely running
//! Linux 2.4)."
//!
//! Runs through the `reorder-survey` campaign engine in
//! amenability-only mode: the population generator draws the hosts,
//! the work-stealing pool fans the probes out, and the streaming
//! aggregator tallies the verdicts. `REORDER_SCALE=quick|std|full`
//! trades population size for time.

use reorder_bench::{rule, Scale};
use reorder_core::techniques::IpidVerdict;
use reorder_survey::{run_campaign, CampaignConfig};
use reorder_tcpstack::IpidScheme;

fn main() {
    let scale = Scale::from_env();
    let cfg = CampaignConfig {
        hosts: scale.pick(2000, 50, 12),
        seed: 0xF165,
        amenability_only: true,
        ..CampaignConfig::default()
    };
    println!("E6: dual-connection-test amenability across the population (§IV-B)");
    rule(84);

    let out = run_campaign(&cfg, None::<&mut Vec<u8>>).expect("no sink, no error");

    // Per-host table at survey scale; at campaign scale show the head.
    let shown = out.reports.len().min(50);
    println!(
        "{:<26} {:<14} {:>9} {:<26}",
        "host", "ipid scheme", "backends", "validator verdict"
    );
    rule(84);
    for r in &out.reports[..shown] {
        let scheme = match r.spec.personality.ipid {
            IpidScheme::GlobalCounter { .. } => "global",
            IpidScheme::GlobalCounterByteSwapped => "global-bswap",
            IpidScheme::PerDestination { .. } => "per-dest",
            IpidScheme::Random => "random",
            IpidScheme::ConstantZero => "zero",
        };
        let v = r.verdict.map_or("probe-failed", IpidVerdict::label);
        println!(
            "{:<26} {:<14} {:>9} {:<26}",
            r.spec.name, scheme, r.spec.backends, v
        );
    }
    if shown < out.reports.len() {
        println!("... ({} more hosts)", out.reports.len() - shown);
    }
    rule(84);
    let s = &out.summary;
    println!("amenable:            {}", s.amenable);
    println!(
        "constant IPID zero:  {}    (paper: 9 hosts, \"likely Linux 2.4\")",
        s.constant_zero
    );
    println!(
        "non-monotonic:       {}    (paper: 8 hosts, \"likely load balancers\")",
        s.non_monotonic
    );
    println!("probe failed:        {}", s.probe_failed);

    // Cross-check the verdicts against the ground-truth host configs.
    let mut correct = 0;
    let mut checked = 0;
    for r in &out.reports {
        let Some(v) = r.verdict else { continue };
        checked += 1;
        let expected = match (r.spec.personality.ipid, r.spec.backends) {
            (IpidScheme::ConstantZero, _) => IpidVerdict::ConstantZero,
            (IpidScheme::Random, _) => IpidVerdict::NonMonotonic,
            // A balanced site *may* pass if both connections hash to
            // one backend; count either verdict as defensible.
            (_, b) if b > 1 => v,
            _ => IpidVerdict::Amenable,
        };
        if v == expected {
            correct += 1;
        }
    }
    println!("verdicts consistent with ground-truth host configs: {correct}/{checked}");
}
