//! E6 — §IV-B host amenability to the Dual Connection Test.
//!
//! "Not all tests were able to work with all hosts. In particular, the
//! dual connection test was ruled out due to non-monotonic IPID
//! behavior from 8 hosts (likely due to transparent load balancers) and
//! a constant IPID value of 0 from another 9 hosts (likely running
//! Linux 2.4)."

use reorder_bench::{parallel_map, rule, Scale};
use reorder_core::sample::TestConfig;
use reorder_core::scenario::{self, HostSpec};
use reorder_core::techniques::{DualConnectionTest, IpidVerdict};
use reorder_tcpstack::IpidScheme;

fn probe_host(spec: HostSpec, seed: u64) -> (HostSpec, Option<IpidVerdict>) {
    let mut sc = scenario::internet_host(&spec, seed);
    let verdict = DualConnectionTest::new(TestConfig::samples(5))
        .probe_amenability(&mut sc.prober, sc.target, 80)
        .ok();
    (spec, verdict)
}

fn main() {
    let _ = Scale::from_env();
    let specs = scenario::population(15, 35, 0xF165);
    println!("E6: dual-connection-test amenability across the population (§IV-B)");
    rule(84);

    let jobs: Vec<(HostSpec, u64)> = specs
        .into_iter()
        .enumerate()
        .map(|(i, s)| (s, 0xE6_0000 + i as u64 * 17))
        .collect();
    let results = parallel_map(jobs, |(spec, seed)| probe_host(spec, seed));

    let mut amenable = 0;
    let mut zero = 0;
    let mut nonmono = 0;
    let mut failed = 0;
    println!(
        "{:<26} {:<14} {:>9} {:<26}",
        "host", "ipid scheme", "backends", "validator verdict"
    );
    rule(84);
    for (spec, verdict) in &results {
        let scheme = match spec.personality.ipid {
            IpidScheme::GlobalCounter { .. } => "global",
            IpidScheme::GlobalCounterByteSwapped => "global-bswap",
            IpidScheme::PerDestination { .. } => "per-dest",
            IpidScheme::Random => "random",
            IpidScheme::ConstantZero => "zero",
        };
        let v = match verdict {
            Some(IpidVerdict::Amenable) => {
                amenable += 1;
                "amenable"
            }
            Some(IpidVerdict::ConstantZero) => {
                zero += 1;
                "constant zero"
            }
            Some(IpidVerdict::NonMonotonic) => {
                nonmono += 1;
                "non-monotonic"
            }
            None => {
                failed += 1;
                "probe failed"
            }
        };
        println!(
            "{:<26} {:<14} {:>9} {:<26}",
            spec.name, scheme, spec.backends, v
        );
    }
    rule(84);
    println!("amenable:            {amenable}");
    println!("constant IPID zero:  {zero}    (paper: 9 hosts, \"likely Linux 2.4\")");
    println!("non-monotonic:       {nonmono}    (paper: 8 hosts, \"likely load balancers\")");
    println!("probe failed:        {failed}");

    // Cross-check the verdicts against the ground-truth host configs.
    let mut correct = 0;
    let mut checked = 0;
    for (spec, verdict) in &results {
        let Some(v) = verdict else { continue };
        checked += 1;
        let expected = match (spec.personality.ipid, spec.backends) {
            (IpidScheme::ConstantZero, _) => IpidVerdict::ConstantZero,
            (IpidScheme::Random, _) => IpidVerdict::NonMonotonic,
            // A balanced site *may* pass if both connections hash to
            // one backend; count either verdict as defensible.
            (_, b) if b > 1 => *v,
            _ => IpidVerdict::Amenable,
        };
        if *v == expected {
            correct += 1;
        }
    }
    println!("verdicts consistent with ground-truth host configs: {correct}/{checked}");
}
