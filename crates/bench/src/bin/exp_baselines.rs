//! E7 — the §II prior-art baselines and their failure modes.
//!
//! * Bennett et al. (ICMP bursts): cannot attribute reordering to a
//!   direction, is burst-size sensitive, and dies on ICMP-filtering
//!   hosts. ("For bursts of five 56-byte packets they report that over
//!   90 percent saw at least one reordering event" — a number driven by
//!   the burst length, not by a per-pair probability.)
//! * Paxson (passive TCP traces): unidirectional but entangled with
//!   TCP's send dynamics; reported as session fractions.

use reorder_bench::{pct, rule, run_technique, Scale};
use reorder_core::baseline::{paxson_session, IcmpBurstTest};
use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::TestKind;
use std::time::Duration;

fn main() {
    let scale = Scale::from_env();
    let bursts = scale.pick(200, 60, 15);
    let samples = scale.pick(200, 60, 15);

    println!("E7: prior-art baselines vs the paper's one-way tests (§II)");
    rule(84);

    // --- Direction ambiguity -------------------------------------------------
    println!("(a) direction attribution on two mirrored paths (swap rate 20% one way):");
    for (label, fwd, rev, seed) in [
        ("forward-only reordering", 0.20, 0.0, 1001u64),
        ("reverse-only reordering", 0.0, 0.20, 1002),
    ] {
        // Bennett: one number, direction unknown.
        let mut sc = scenario::validation_rig(fwd, rev, seed);
        let icmp = IcmpBurstTest::default()
            .run(&mut sc.prober, sc.target, bursts, Duration::from_millis(3))
            .expect("icmp");
        // Ours: per-direction rates.
        let mut sc = scenario::validation_rig(fwd, rev, seed + 10);
        let run = run_technique(
            TestKind::SingleConnectionReversed,
            &mut sc,
            TestConfig::samples(samples),
        )
        .expect("single");
        println!(
            "  {label:<26} icmp-bursts-with-event {}   single: fwd {} rev {}",
            pct(icmp.rate()),
            pct(run.fwd_estimate().rate()),
            pct(run.rev_estimate().rate()),
        );
    }
    println!("  -> the ICMP metric moves identically in both cases; ours attributes.");
    rule(84);

    // --- Burst-size sensitivity ----------------------------------------------
    println!("(b) Bennett burst-size sensitivity (same path, swap rate 10%):");
    for burst in [2usize, 5, 20, 100] {
        let mut sc = scenario::validation_rig(0.10, 0.0, 2000 + burst as u64);
        let test = IcmpBurstTest {
            burst,
            ..IcmpBurstTest::default()
        };
        let est = test
            .run(
                &mut sc.prober,
                sc.target,
                bursts.min(60),
                Duration::from_millis(3),
            )
            .expect("icmp");
        println!(
            "  burst {:>3} packets: bursts with >=1 event = {}",
            burst,
            pct(est.rate())
        );
    }
    println!("  -> \"the number of bursts that have one reordering event is highly");
    println!("     sensitive to the size of the burst\" (§II); not a path property.");
    rule(84);

    // --- ICMP filtering -------------------------------------------------------
    println!("(c) ICMP-filtering host (hardened personality):");
    let mut sc = scenario::validation_rig_with(
        0.10,
        0.0,
        reorder_tcpstack::HostPersonality::hardened(),
        3000,
    );
    match IcmpBurstTest::default().run(&mut sc.prober, sc.target, 5, Duration::from_millis(3)) {
        Err(e) => println!("  bennett: {e}"),
        Ok(est) => println!("  bennett unexpectedly worked: {}", pct(est.rate())),
    }
    let run = run_technique(
        TestKind::SingleConnectionReversed,
        &mut sc,
        TestConfig::samples(samples),
    )
    .expect("single");
    println!(
        "  single connection test still works: fwd {} over {} samples",
        pct(run.fwd_estimate().rate()),
        run.fwd_determinate()
    );
    rule(84);

    // --- Paxson session statistics -------------------------------------------
    println!("(d) Paxson-style passive sessions (reverse path, swap rate 10%):");
    let sessions = scale.pick(50, 20, 6);
    let mut with_event = 0;
    let mut pkt_rates = Vec::new();
    for s in 0..sessions {
        let mut sc = scenario::validation_rig(0.0, 0.10, 4000 + s as u64);
        if let Ok(stats) = paxson_session(&mut sc.prober, sc.target, 80) {
            if stats.any_event {
                with_event += 1;
            }
            pkt_rates.push(stats.packet_rate());
        }
    }
    println!(
        "  sessions with >=1 event: {}/{} = {}  (Paxson reported 12%-36%)",
        with_event,
        sessions,
        pct(with_event as f64 / sessions as f64)
    );
    println!(
        "  mean fraction of packets reordered: {}  (Paxson: 0.3%-2%)",
        pct(reorder_core::stats::mean(&pkt_rates))
    );
    // Versus our per-pair estimate on the same path:
    let mut sc = scenario::validation_rig(0.0, 0.10, 4999);
    let run = run_technique(TestKind::Syn, &mut sc, TestConfig::samples(samples)).expect("syn");
    println!(
        "  syn test on the same path, rev rate: {} (the controlled quantity)",
        pct(run.rev_estimate().rate())
    );
}
