//! Protocol impact — the paper's motivating claim quantified (§I and
//! §IV-C): given the measured time-domain reordering distribution,
//! predict what it does to TCP's fast retransmit and to a VoIP playout
//! buffer, and evaluate the adaptive-dupthresh mitigation the related
//! work proposes ("All of these projects would benefit from access to
//! contemporary empirical data").

use reorder_bench::{pct, rule, Scale};
use reorder_core::impact::{observe_stream, tcp, voip};
use reorder_core::scenario;
use reorder_netsim::pipes::CrossTraffic;
use std::time::Duration;

fn main() {
    let scale = Scale::from_env();
    let n = scale.pick(20_000, 5_000, 800);

    println!("Impact analysis over the striped (queue-imbalance) path");
    rule(80);

    // --- TCP: dupthresh sweep on back-to-back vs paced streams -------------
    for (label, gap) in [
        ("back-to-back 40B stream (ACK-like)", Duration::ZERO),
        (
            "12us-spaced 1500B stream (data-like)",
            Duration::from_micros(12),
        ),
    ] {
        let mut sc = scenario::striped_path(CrossTraffic::backbone(), 0x1AC7);
        let size = if gap.is_zero() { 40 } else { 1500 };
        let obs = observe_stream(&mut sc, n, gap, size);
        let order = obs.arrival_order();
        println!(
            "{label}: {} packets, loss {:.2}%",
            obs.sent,
            obs.loss_fraction() * 100.0
        );
        println!("  dupthresh   spurious-FR   per-1000-pkts   relative-goodput(w=64)");
        for thresh in [1usize, 2, 3, 4, 6] {
            let s = tcp::spurious_fast_retransmits(&order, thresh);
            let rate = s as f64 / order.len() as f64;
            println!(
                "  {:>9} {:>13} {:>15.2} {:>24.3}",
                thresh,
                s,
                rate * 1000.0,
                tcp::relative_goodput(rate, 64.0)
            );
        }
        let adaptive = tcp::adaptive_fast_retransmits(&order, 3);
        println!(
            "  adaptive(start 3): {} spurious, settles at dupthresh {}",
            adaptive.spurious, adaptive.final_dupthresh
        );
        println!();
    }

    rule(80);
    // --- VoIP: playout depth requirements -----------------------------------
    println!("VoIP playout (20 ms voice frames over the same path):");
    let mut sc = scenario::striped_path(CrossTraffic::backbone(), 0x701B);
    let obs = observe_stream(
        &mut sc,
        scale.pick(5_000, 2_000, 400),
        Duration::from_millis(20),
        200,
    );
    println!("  depth(us)   unusable-frames");
    for depth_us in [0u64, 10, 25, 50, 100, 250, 500] {
        println!(
            "  {:>9} {:>17}",
            depth_us,
            pct(voip::unusable_fraction(
                &obs,
                Duration::from_micros(depth_us)
            ))
        );
    }
    match voip::min_depth_for(&obs, 0.001) {
        Some(d) => println!("  minimum depth for <=0.1% unusable: {} us", d.as_micros()),
        None => println!("  loss alone exceeds the 0.1% budget; no buffer depth suffices"),
    }
    println!();
    println!("note: 20 ms-spaced voice frames sit far out on the gap profile, so");
    println!("reordering barely touches them — matching §IV-C's observation that");
    println!("spread-out packets tolerate greater queue imbalance.");

    rule(80);
    // --- Closed-loop TCP sender: goodput vs dupthresh ------------------------
    // The §II proposals, evaluated: a Reno-style sender transferring a
    // real object across a 20%-swap path, with fixed and adaptive
    // thresholds. (Receiver ACKs every segment so the comparison
    // isolates congestion control from delayed-ACK parity stalls.)
    println!("closed-loop sender across the striped path (256 KiB transfer, bursty windows):");
    println!(
        "  {:<16} {:>10} {:>9} {:>9} {:>12}",
        "policy", "goodput", "fast-rtx", "spurious", "final-thresh"
    );
    let eager = reorder_tcpstack::HostPersonality {
        delayed_ack: reorder_tcpstack::DelayedAck::disabled(),
        ..reorder_tcpstack::HostPersonality::freebsd4()
    };
    use reorder_core::sender::{run_transfer, DupThresh, SenderConfig};
    for (label, policy) in [
        ("fixed(1)", DupThresh::Fixed(1)),
        ("fixed(3)", DupThresh::Fixed(3)),
        ("fixed(6)", DupThresh::Fixed(6)),
        ("adaptive(3)", DupThresh::Adaptive(3)),
        ("never", DupThresh::Never),
    ] {
        // Window bursts hit the stripe back-to-back, so queue-imbalance
        // extents regularly exceed the standard dupthresh of 3.
        let mut sc = reorder_core::scenario::striped_path_with(
            2,
            1_000_000_000,
            CrossTraffic::backbone(),
            eager.clone(),
            reorder_core::scenario::SimVersion::default(),
            0x5E4D,
        );
        let cfg = SenderConfig {
            bytes: 256 * 1024,
            dupthresh: policy,
            ..SenderConfig::default()
        };
        match run_transfer(&mut sc.prober, sc.target, 80, cfg) {
            Ok(s) => println!(
                "  {:<16} {:>7.2} Mb/s {:>9} {:>9} {:>12}",
                label,
                s.goodput_bps() / 1e6,
                s.fast_retransmits,
                s.spurious_retransmits,
                if s.final_dupthresh == usize::MAX {
                    "-".to_string()
                } else {
                    s.final_dupthresh.to_string()
                }
            ),
            Err(e) => println!("  {label:<16} failed: {e}"),
        }
    }
    println!("  (reordering-tolerant thresholds win back the goodput spurious halving costs)");

    rule(80);
    // --- RFC 4737 summary ----------------------------------------------------
    // The paper's reference [8] became RFC 4737; report the same path in
    // the standardized vocabulary.
    let mut sc = scenario::striped_path(CrossTraffic::backbone(), 0x4737);
    let obs = observe_stream(&mut sc, scale.pick(20_000, 5_000, 800), Duration::ZERO, 40);
    let report = reorder_core::rfc4737::analyze(&reorder_core::rfc4737::from_observation(&obs));
    println!("RFC 4737 metrics, back-to-back 40B stream on the striped path:");
    println!("  reordered ratio:        {}", pct(report.ratio));
    println!("  max extent:             {} packets", report.max_extent());
    println!("  n-reordering degree:    {}", report.degree());
    println!(
        "  P(>=3-reordered):       {}   (the TCP dupthresh-3 exposure)",
        pct(report.at_least_n_reordered(3))
    );
    println!(
        "  mean reordering-free run: {:.1} packets",
        report.mean_free_run()
    );
    let max_late = report
        .late_offsets
        .iter()
        .max()
        .copied()
        .unwrap_or(Duration::ZERO);
    println!("  max late-time offset:   {} us", max_late.as_micros());
}
