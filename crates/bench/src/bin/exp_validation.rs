//! E1 — the §IV-A controlled validation.
//!
//! "We used two separate uniform random distributions for the forward
//! and reverse path reordering rates, and the mean of each distribution
//! was varied to include all combinations of 1%, 3%, 5%, 10%, 15%, and
//! 40% (in the TCP data transfer test only the reverse path
//! distribution was manipulated). We collected 100 samples for each
//! measurement technique for each combination. [...] Out of the 114
//! tests there were 8 discrepancies in the forward direction and 2 in
//! the reverse direction. [...] Overall, of the 114,000 samples, 99.99%
//! of the samples were confirmed as correct."
//!
//! 36 swap-rate combinations × {single, dual, SYN} + 6 reverse rates ×
//! {transfer} = exactly 114 test runs, each validated packet-by-packet
//! against the capture traces.

use reorder_bench::{parallel_map, pct, rule, run_technique, Scale};
use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::techniques::TestKind;
use reorder_core::validate::{validate_run, ValidationReport};

#[derive(Clone, Copy)]
struct Job {
    kind: TestKind,
    fwd: f64,
    rev: f64,
    seed: u64,
    samples: usize,
}

struct JobResult {
    kind: TestKind,
    fwd: f64,
    rev: f64,
    report: Option<ValidationReport>,
    samples: usize,
    error: Option<String>,
}

fn run_job(job: Job) -> JobResult {
    let mut sc = scenario::validation_rig(job.fwd, job.rev, job.seed);
    let cfg = if job.kind == TestKind::DataTransfer {
        TestConfig::default() // object size sets the count
    } else {
        TestConfig::samples(job.samples)
    };
    let run = run_technique(job.kind, &mut sc, cfg);
    match run {
        Ok(run) => {
            let report = validate_run(
                &run,
                &sc.merged_server_rx(),
                &sc.merged_server_tx(),
                &sc.prober_trace(),
            );
            JobResult {
                kind: job.kind,
                fwd: job.fwd,
                rev: job.rev,
                samples: run.samples.len(),
                report: Some(report),
                error: None,
            }
        }
        Err(e) => JobResult {
            kind: job.kind,
            fwd: job.fwd,
            rev: job.rev,
            samples: 0,
            report: None,
            error: Some(e.to_string()),
        },
    }
}

fn main() {
    let scale = Scale::from_env();
    let samples = scale.pick(100, 100, 20);
    let rates = [0.01, 0.03, 0.05, 0.10, 0.15, 0.40];

    let mut jobs = Vec::new();
    let mut seed = 0xE1_000;
    for &fwd in &rates {
        for &rev in &rates {
            for kind in [
                TestKind::SingleConnectionReversed,
                TestKind::DualConnection,
                TestKind::Syn,
            ] {
                seed += 1;
                jobs.push(Job {
                    kind,
                    fwd,
                    rev,
                    seed,
                    samples,
                });
            }
        }
    }
    for &rev in &rates {
        seed += 1;
        jobs.push(Job {
            kind: TestKind::DataTransfer,
            fwd: 0.0,
            rev,
            seed,
            samples,
        });
    }
    assert_eq!(jobs.len(), 114, "the paper's 114 test runs");

    println!("E1: controlled validation (modified-dummynet rig, §IV-A)");
    println!("    {} test runs x {} samples", jobs.len(), samples);
    rule(100);

    let results = parallel_map(jobs, run_job);

    println!(
        "{:<12} {:>6} {:>6} | {:>8} {:>8} {:>9} | {:>8} {:>8} {:>9}",
        "test", "fwd%", "rev%", "fwd-chk", "fwd-err", "fwd-acc", "rev-chk", "rev-err", "rev-acc"
    );
    rule(100);
    let mut fwd_discrepant_runs = 0;
    let mut rev_discrepant_runs = 0;
    let mut total_checked = 0usize;
    let mut total_agree = 0usize;
    let mut failed_runs = 0;
    for r in &results {
        match &r.report {
            Some(rep) => {
                let fe = rep.fwd.count_error();
                let re = rep.rev.count_error();
                if fe != 0 {
                    fwd_discrepant_runs += 1;
                }
                if re != 0 {
                    rev_discrepant_runs += 1;
                }
                total_checked += rep.fwd.checked + rep.rev.checked;
                total_agree += rep.fwd.agree + rep.rev.agree;
                // Only print runs with any disagreement plus a sparse
                // sample of clean runs, to keep the table readable.
                let interesting =
                    fe != 0 || re != 0 || (r.fwd == 0.10 && (r.rev == 0.10 || r.rev == 0.0));
                if interesting {
                    println!(
                        "{:<12} {:>6.1} {:>6.1} | {:>8} {:>+8} {:>9} | {:>8} {:>+8} {:>9}",
                        r.kind.label(),
                        r.fwd * 100.0,
                        r.rev * 100.0,
                        rep.fwd.checked,
                        fe,
                        pct(rep.fwd.accuracy()),
                        rep.rev.checked,
                        re,
                        pct(rep.rev.accuracy()),
                    );
                }
            }
            None => {
                failed_runs += 1;
                println!(
                    "{:<12} {:>6.1} {:>6.1} | run failed: {}",
                    r.kind.label(),
                    r.fwd * 100.0,
                    r.rev * 100.0,
                    r.error.as_deref().unwrap_or("?")
                );
            }
        }
    }
    rule(100);
    let total_samples: usize = results.iter().map(|r| r.samples).sum();
    println!("runs: {} ({} failed)", results.len(), failed_runs);
    println!("samples collected: {total_samples}");
    println!("runs with fwd count discrepancy: {fwd_discrepant_runs}   (paper: 8 of 114)");
    println!("runs with rev count discrepancy: {rev_discrepant_runs}   (paper: 2 of 114)");
    println!(
        "per-sample verdict accuracy: {} over {} checked sample-directions   (paper: 99.99%)",
        pct(if total_checked == 0 {
            1.0
        } else {
            total_agree as f64 / total_checked as f64
        }),
        total_checked
    );
}
