//! Criterion perf benches for the substrate hot paths: wire
//! encode/decode, checksums, the event engine, the pipes, and the
//! campaign aggregation primitives.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reorder_core::stats::QuantileSketch;
use reorder_netsim::pipes::{
    CrossTraffic, CrossTrafficModel, DummynetConfig, DummynetReorder, StripingLink,
};
use reorder_netsim::{Ctx, Device, LinkParams, Port, SimTime, Simulator};
use reorder_survey::RateHistogram;
use reorder_wire::{checksum, Ipv4Addr4, Packet, PacketBuilder, TcpFlags, TcpOption};
use std::cell::RefCell;
use std::rc::Rc;

fn probe_packet(n: u16, payload: usize) -> Packet {
    PacketBuilder::tcp()
        .src(Ipv4Addr4::new(10, 0, 0, 1), 1000)
        .dst(Ipv4Addr4::new(10, 0, 0, 2), 80)
        .seq(u32::from(n))
        .ack(1)
        .flags(TcpFlags::ACK | TcpFlags::PSH)
        .option(TcpOption::Mss(1460))
        .ipid(n)
        .data(vec![0xAB; payload])
        .build()
}

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    for payload in [0usize, 512, 1460] {
        let pkt = probe_packet(7, payload);
        let bytes = pkt.encode();
        g.throughput(Throughput::Bytes(bytes.len() as u64));
        g.bench_with_input(BenchmarkId::new("encode", payload), &pkt, |b, p| {
            b.iter(|| black_box(p.encode()))
        });
        g.bench_with_input(BenchmarkId::new("decode", payload), &bytes, |b, bs| {
            b.iter(|| Packet::decode(black_box(bs)).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("checksum");
    for size in [40usize, 576, 1500] {
        let data: Vec<u8> = (0..size).map(|i| (i * 31) as u8).collect();
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("internet", size), &data, |b, d| {
            b.iter(|| checksum::internet(black_box(d)))
        });
    }
    g.finish();
}

/// Ping-pong device pair used to saturate the event engine.
struct Echo;
impl Device for Echo {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, port: Port, pkt: Packet) {
        let mut p = pkt;
        std::mem::swap(&mut p.ip.src, &mut p.ip.dst);
        ctx.transmit(port, p);
    }
}
struct Sink(Rc<RefCell<usize>>);
impl Device for Sink {
    fn on_packet(&mut self, _: &mut Ctx<'_>, _: Port, _: Packet) {
        *self.0.borrow_mut() += 1;
    }
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.throughput(Throughput::Elements(1000));
    g.bench_function("deliver_1000_events", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(1);
            let count = Rc::new(RefCell::new(0usize));
            let sink = sim.add_node(Box::new(Sink(count.clone())));
            let echo = sim.add_node(Box::new(Echo));
            sim.connect(sink, Port(0), echo, Port(0), LinkParams::lan());
            for i in 0..500u16 {
                sim.transmit_from(sink, Port(0), probe_packet(i, 0));
            }
            sim.run_until_idle(SimTime::from_secs(10));
            assert_eq!(*count.borrow(), 500);
        })
    });
    g.finish();

    let mut g = c.benchmark_group("pipes");
    g.throughput(Throughput::Elements(500));
    g.bench_function("dummynet_500_packets", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(1);
            let count = Rc::new(RefCell::new(0usize));
            let src = sim.add_node(Box::new(Sink(Rc::new(RefCell::new(0)))));
            let pipe = sim.add_node(Box::new(DummynetReorder::new(
                DummynetConfig {
                    fwd_swap: 0.2,
                    ..Default::default()
                },
                1,
                "b",
            )));
            let dst = sim.add_node(Box::new(Sink(count.clone())));
            sim.connect(src, Port(0), pipe, Port(0), LinkParams::lan());
            sim.connect(pipe, Port(1), dst, Port(0), LinkParams::lan());
            for i in 0..500u16 {
                sim.transmit_from(src, Port(0), probe_packet(i, 0));
            }
            sim.run_until_idle(SimTime::from_secs(10));
            assert_eq!(*count.borrow(), 500);
        })
    });
    // The v1/v2 cross-traffic pair: replay is the per-arrival Poisson
    // reconstruction, stationary the O(1) workload draw.
    for model in [CrossTrafficModel::Replay, CrossTrafficModel::Stationary] {
        g.bench_function(format!("striping_{}_500_packets", model.label()), |b| {
            b.iter(|| {
                let mut sim = Simulator::new(1);
                let count = Rc::new(RefCell::new(0usize));
                let src = sim.add_node(Box::new(Sink(Rc::new(RefCell::new(0)))));
                let pipe = sim.add_node(Box::new(StripingLink::new(
                    2,
                    1_000_000_000,
                    Some(CrossTraffic::backbone()),
                    model,
                    1,
                    "b",
                )));
                let dst = sim.add_node(Box::new(Sink(count.clone())));
                sim.connect(src, Port(0), pipe, Port(0), LinkParams::lan());
                sim.connect(pipe, Port(1), dst, Port(0), LinkParams::lan());
                for i in 0..500u16 {
                    sim.transmit_from(src, Port(0), probe_packet(i, 0));
                }
                sim.run_until_idle(SimTime::from_secs(10));
                assert_eq!(*count.borrow(), 500);
            })
        });
    }
    g.finish();
}

/// The aggregation-primitive pair behind every per-host rate the
/// campaign absorbs: the mergeable quantile sketch vs the fixed-bucket
/// histogram it replaced as the summary's source of truth. Also the
/// shard-merge cost, the one step the funnel-free path added.
fn bench_stats(c: &mut Criterion) {
    // A deterministic rate stream shaped like campaign output: mostly
    // small positive rates, some exact zeros.
    let rates: Vec<f64> = (0..4096u32)
        .map(|i| {
            if i % 7 == 0 {
                0.0
            } else {
                f64::from(i % 997) / 997.0
            }
        })
        .collect();
    let mut g = c.benchmark_group("stats");
    g.throughput(Throughput::Elements(rates.len() as u64));
    g.bench_function("sketch_push_4096", |b| {
        b.iter(|| {
            let mut s = QuantileSketch::new();
            for &r in &rates {
                s.push(black_box(r));
            }
            black_box(s.count())
        })
    });
    g.bench_function("histogram_push_4096", |b| {
        b.iter(|| {
            let mut h = RateHistogram::default();
            for &r in &rates {
                h.push(black_box(r));
            }
            black_box(h.total())
        })
    });
    let (mut left, mut right) = (QuantileSketch::new(), QuantileSketch::new());
    for (i, &r) in rates.iter().enumerate() {
        if i % 2 == 0 {
            left.push(r);
        } else {
            right.push(r);
        }
    }
    g.bench_function("sketch_merge", |b| {
        b.iter(|| {
            let mut s = left.clone();
            s.merge(black_box(&right));
            black_box(s.count())
        })
    });
    g.finish();
}

/// The telemetry primitives on the campaign hot path: counter bumps,
/// the span enter/exit pair per mode (Off must be branch-cheap — it
/// never reads the clock), and the per-worker state merge the metrics
/// document folds at campaign end.
fn bench_telemetry(c: &mut Criterion) {
    use reorder_core::telemetry::{TelemetryMode, WorkerTelemetry};

    let mut g = c.benchmark_group("telemetry");
    g.throughput(Throughput::Elements(1024));
    g.bench_function("counter_bump_1024", |b| {
        b.iter(|| {
            let mut tel = WorkerTelemetry::new();
            for i in 0..1024u64 {
                tel.count("netsim.events", black_box(i & 7));
            }
            black_box(tel.counter("netsim.events"))
        })
    });
    for mode in [
        TelemetryMode::Off,
        TelemetryMode::Summary,
        TelemetryMode::Full,
    ] {
        g.bench_function(format!("span_enter_exit_1024_{mode}"), |b| {
            b.iter(|| {
                let mut tel = WorkerTelemetry::new();
                for _ in 0..1024 {
                    let sw = black_box(mode).start();
                    tel.span("host", mode, sw);
                }
                black_box(tel.span_stats("host").map(|s| s.count()))
            })
        });
    }
    // Merge two workers' worth of a realistic campaign shape: a few
    // counters, a few spans with thousands of observations each.
    let worker = |salt: u64| {
        let mut tel = WorkerTelemetry::new();
        tel.count("netsim.events", 1_000_000 + salt);
        tel.count("pool.hits", 5_000 + salt);
        tel.count("sched.tasks", 5_000 + salt);
        for key in ["host", "measure", "baseline", "amenability"] {
            for i in 0..4096u64 {
                let secs = 1e-4 + (((i ^ salt) % 997) as f64) * 1e-6;
                tel.record_span(key, TelemetryMode::Full, secs);
            }
        }
        tel
    };
    let (left, right) = (worker(1), worker(2));
    g.bench_function("worker_merge", |b| {
        b.iter(|| {
            let mut tel = left.clone();
            tel.merge(black_box(&right));
            black_box(tel.counter("netsim.events"))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_wire,
    bench_engine,
    bench_stats,
    bench_telemetry
);
criterion_main!(benches);
