//! Criterion perf benches for whole measurements: how many samples per
//! second each technique sustains against a simulated target, plus the
//! metric computations.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reorder_bench::run_technique;
use reorder_core::metrics::{exchanges, max_sack_blocks, non_reversing_reordered, Cdf};
use reorder_core::sample::TestConfig;
use reorder_core::scenario;
use reorder_core::TestKind;

fn bench_techniques(c: &mut Criterion) {
    let samples = 20usize;
    let mut g = c.benchmark_group("techniques");
    g.sample_size(20);
    g.throughput(Throughput::Elements(samples as u64));

    g.bench_function("single_connection_20_samples", |b| {
        b.iter(|| {
            let mut sc = scenario::validation_rig(0.05, 0.05, 11);
            run_technique(
                TestKind::SingleConnectionReversed,
                &mut sc,
                TestConfig::samples(samples),
            )
            .unwrap()
        })
    });
    g.bench_function("dual_connection_20_samples", |b| {
        b.iter(|| {
            let mut sc = scenario::validation_rig(0.05, 0.05, 12);
            run_technique(
                TestKind::DualConnection,
                &mut sc,
                TestConfig::samples(samples),
            )
            .unwrap()
        })
    });
    g.bench_function("syn_test_20_samples", |b| {
        b.iter(|| {
            let mut sc = scenario::validation_rig(0.05, 0.05, 13);
            run_technique(TestKind::Syn, &mut sc, TestConfig::samples(samples)).unwrap()
        })
    });
    g.bench_function("data_transfer_full_object", |b| {
        b.iter(|| {
            let mut sc = scenario::validation_rig(0.0, 0.05, 14);
            run_technique(TestKind::DataTransfer, &mut sc, TestConfig::default()).unwrap()
        })
    });
    g.finish();
}

fn bench_metrics(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics");
    for n in [100usize, 10_000] {
        // A mildly shuffled arrival sequence.
        let arrivals: Vec<u64> = (0..n as u64)
            .map(|i| if i % 17 == 3 && i > 0 { i - 1 } else { i })
            .collect();
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("exchanges", n), &arrivals, |b, a| {
            b.iter(|| exchanges(black_box(a)))
        });
        g.bench_with_input(BenchmarkId::new("non_reversing", n), &arrivals, |b, a| {
            b.iter(|| non_reversing_reordered(black_box(a)))
        });
        g.bench_with_input(BenchmarkId::new("sack_blocks", n), &arrivals, |b, a| {
            b.iter(|| max_sack_blocks(black_box(a), 0))
        });
    }
    let rates: Vec<f64> = (0..1000).map(|i| (i % 97) as f64 / 97.0).collect();
    g.bench_function("cdf_build_1000", |b| {
        b.iter(|| Cdf::new(black_box(rates.clone())))
    });
    g.finish();
}

criterion_group!(benches, bench_techniques, bench_metrics);
criterion_main!(benches);
