//! End-to-end orchestrator tests: the headline contract is that a
//! campaign interrupted by the fault-injection hook and then resumed
//! produces **byte-identical** outputs — merged summary and
//! concatenated JSONL — to an uninterrupted run of the same plan, and
//! both match a plain unsharded survey of the same spec. Around that:
//! transient shard failures are retried to success, exhausted retries
//! surface in `CampaignReport::failed` (and the directory stays
//! resumable), and a directory is never silently reused for a
//! different plan.

use reorder_campaign::{
    checkpoint_path, part_path, resume, start, CampaignOptions, CampaignSpec, Checkpoint,
    InProcessRunner, ShardRunner,
};
use reorder_core::telemetry::TelemetryMode;
use reorder_survey::{run_shard, ShardState};
use std::collections::HashSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("reorder_resume_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A quick plan that still exercises every moving part: multiple
/// shards, JSONL parts, real measurement.
fn quick_spec() -> CampaignSpec {
    CampaignSpec {
        hosts: 30,
        shards: 5,
        samples: 3,
        baseline: false,
        jsonl: true,
        ..CampaignSpec::default()
    }
}

fn runner() -> InProcessRunner {
    InProcessRunner {
        workers: 1,
        telemetry: TelemetryMode::Summary,
    }
}

fn opts() -> CampaignOptions {
    CampaignOptions {
        inflight: 2,
        backoff_ms: 1,
        ..CampaignOptions::default()
    }
}

fn read(path: &Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

#[test]
fn interrupted_campaign_resumes_to_identical_bytes() {
    let spec = quick_spec();

    // Reference: one uninterrupted orchestrated run.
    let dir_a = tmpdir("clean");
    let a = start(&dir_a, spec.clone(), &opts(), &runner()).expect("clean run");
    assert!(!a.interrupted && a.failed.is_empty());
    assert_eq!(a.checkpoint.completed.len(), spec.shards);
    let summary_a = read(&a.summary_path.clone().expect("summary written"));
    let jsonl_a = read(&a.jsonl_path.clone().expect("jsonl written"));
    for shard in 1..=spec.shards {
        assert!(part_path(&dir_a, shard).exists(), "part {shard} persisted");
    }

    // The campaign outputs are the plain survey's outputs: an
    // unsharded run of the same spec renders the same summary and
    // emits the same JSONL as the 5-shard concatenation.
    let mut unsharded = Vec::new();
    let state = run_shard(
        &spec.config(1, TelemetryMode::Off),
        1,
        1,
        Some(&mut unsharded),
    )
    .expect("unsharded run");
    assert_eq!(summary_a, state.agg.summary.render().as_bytes());
    assert_eq!(jsonl_a, unsharded);

    // Crash after 2 checkpoint writes, then resume.
    let dir_b = tmpdir("crash");
    let crash_opts = CampaignOptions {
        fail_after_shards: Some(2),
        ..opts()
    };
    let b1 = start(&dir_b, spec.clone(), &crash_opts, &runner()).expect("interrupted run");
    assert!(b1.interrupted, "fault injection must trip");
    assert_eq!(b1.completed_now, 2);
    assert!(b1.summary_path.is_none() && b1.jsonl_path.is_none());
    let durable = Checkpoint::load(&checkpoint_path(&dir_b)).expect("resumable checkpoint");
    assert_eq!(
        durable.completed.len(),
        2,
        "exactly the checkpointed shards survive"
    );

    let b2 = resume(&dir_b, &opts(), &runner()).expect("resumed run");
    assert!(!b2.interrupted && b2.failed.is_empty());
    assert_eq!(b2.resumed, 2);
    assert_eq!(b2.completed_now, spec.shards - 2);
    assert_eq!(
        summary_a,
        read(&b2.summary_path.expect("summary after resume"))
    );
    assert_eq!(jsonl_a, read(&b2.jsonl_path.expect("jsonl after resume")));

    // Resuming a finished campaign is an idempotent re-finalize.
    let b3 = resume(&dir_b, &opts(), &runner()).expect("resume of finished campaign");
    assert_eq!(b3.resumed, spec.shards);
    assert_eq!(b3.completed_now, 0);
    assert_eq!(
        summary_a,
        read(&b3.summary_path.expect("summary still there"))
    );

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

/// Fails the first attempt of every odd shard, then delegates.
struct Flaky {
    inner: InProcessRunner,
    tripped: Mutex<HashSet<usize>>,
}

impl ShardRunner for Flaky {
    fn run(
        &self,
        spec: &CampaignSpec,
        shard: usize,
        part: Option<&Path>,
    ) -> Result<ShardState, String> {
        if shard % 2 == 1 && self.tripped.lock().unwrap().insert(shard) {
            return Err(format!("injected transient fault on shard {shard}"));
        }
        self.inner.run(spec, shard, part)
    }
}

#[test]
fn transient_failures_are_retried_to_identical_bytes() {
    let spec = quick_spec();
    let dir_a = tmpdir("retry_ref");
    let a = start(&dir_a, spec.clone(), &opts(), &runner()).expect("clean run");

    let dir_b = tmpdir("retry");
    let flaky = Flaky {
        inner: runner(),
        tripped: Mutex::new(HashSet::new()),
    };
    let b = start(&dir_b, spec.clone(), &opts(), &flaky).expect("flaky run");
    assert!(b.failed.is_empty(), "retries must absorb transient faults");
    assert_eq!(b.retries, 3, "shards 1, 3, 5 each fail once");
    assert_eq!(
        read(&a.summary_path.expect("reference summary")),
        read(&b.summary_path.expect("flaky summary")),
    );
    assert_eq!(
        read(&a.jsonl_path.expect("reference jsonl")),
        read(&b.jsonl_path.expect("flaky jsonl")),
    );

    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

/// One shard fails every attempt; the rest delegate.
struct Doomed {
    inner: InProcessRunner,
    bad: usize,
}

impl ShardRunner for Doomed {
    fn run(
        &self,
        spec: &CampaignSpec,
        shard: usize,
        part: Option<&Path>,
    ) -> Result<ShardState, String> {
        if shard == self.bad {
            return Err(format!("shard {shard} is doomed"));
        }
        self.inner.run(spec, shard, part)
    }
}

#[test]
fn exhausted_retries_surface_and_stay_resumable() {
    let spec = quick_spec();
    let dir = tmpdir("doomed");
    let doomed = Doomed {
        inner: runner(),
        bad: 3,
    };
    let few_retries = CampaignOptions {
        retries: 1,
        ..opts()
    };
    let report = start(&dir, spec.clone(), &few_retries, &doomed).expect("run with failure");
    assert_eq!(report.failed.len(), 1, "exactly the doomed shard fails");
    assert_eq!(report.failed[0].0, 3);
    assert!(
        report.failed[0].1.contains("doomed"),
        "{}",
        report.failed[0].1
    );
    assert_eq!(report.retries, 1, "one re-attempt before giving up");
    assert!(
        report.summary_path.is_none() && report.jsonl_path.is_none(),
        "an incomplete campaign must not finalize outputs"
    );
    let durable = Checkpoint::load(&checkpoint_path(&dir)).expect("directory stays resumable");
    assert_eq!(durable.completed.len(), spec.shards - 1);
    assert!(!durable.completed.contains(&3));

    // Once the fault clears, a plain resume completes the campaign.
    let recovered = resume(&dir, &opts(), &runner()).expect("recovery resume");
    assert!(recovered.failed.is_empty());
    assert_eq!(recovered.resumed, spec.shards - 1);
    assert_eq!(recovered.completed_now, 1);
    assert!(recovered.summary_path.is_some() && recovered.jsonl_path.is_some());

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn start_refuses_a_directory_holding_a_different_plan() {
    let dir = tmpdir("refuse");
    let spec = quick_spec();
    start(&dir, spec.clone(), &opts(), &runner()).expect("first run");

    let other = CampaignSpec {
        hosts: spec.hosts + 1,
        ..spec.clone()
    };
    let err = start(&dir, other, &opts(), &runner()).expect_err("different plan must be refused");
    assert_eq!(err.kind(), std::io::ErrorKind::AlreadyExists);
    assert!(err.to_string().contains("different campaign"), "{err}");

    // Same plan: starting again is a safe no-op resume.
    let again = start(&dir, spec.clone(), &opts(), &runner()).expect("same plan restarts");
    assert_eq!(again.resumed, spec.shards);
    assert_eq!(again.completed_now, 0);

    let _ = fs::remove_dir_all(&dir);
}
