//! Property tests for the checkpoint serialization contract: the
//! aggregation and telemetry state that rides inside
//! `reorder.checkpoint/1` must survive a to_json/from_json round trip
//! *exactly* (merging restored states equals merging the originals),
//! and a sealed document with any single flipped bit must be rejected
//! by the integrity hash rather than merged silently. These two laws
//! are what let `--resume` promise byte-identical output instead of
//! "approximately the same numbers".

use proptest::prelude::*;
use reorder_campaign::{CampaignSpec, Checkpoint};
use reorder_core::metrics::ReorderEstimate;
use reorder_core::stats::{Moments, QuantileSketch};
use reorder_core::telemetry::{TelemetryMode, WorkerTelemetry};
use reorder_survey::aggregate::GroupAgg;
use reorder_survey::{unseal, CampaignSummary, ShardAggregator};
use std::collections::BTreeMap;

const LABELS: [&str; 6] = ["dual", "syn", "transfer", "striping", "freebsd4", "linux"];
const COUNTERS: [&str; 3] = ["netsim.events", "pool.hits", "sched.tasks"];
const SPANS: [&str; 3] = ["host", "measure", "baseline"];

/// One observation a worker might record mid-campaign (same op
/// language as `prop_telemetry.rs` in core).
#[derive(Clone, Debug)]
enum Op {
    Count(usize, u64),
    Span(usize, f64),
}

fn arb_ops(max_len: usize) -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..COUNTERS.len(), 0u64..10_000).prop_map(|(k, n)| Op::Count(k, n)),
            (0usize..SPANS.len(), 1e-6f64..1e3).prop_map(|(k, s)| Op::Span(k, s)),
        ],
        0..max_len,
    )
}

fn apply(ops: &[Op]) -> WorkerTelemetry {
    let mut tel = WorkerTelemetry::new();
    for op in ops {
        match *op {
            Op::Count(k, n) => tel.count(COUNTERS[k], n),
            Op::Span(k, s) => tel.record_span(SPANS[k], TelemetryMode::Full, s),
        }
    }
    tel
}

fn arb_est() -> impl Strategy<Value = ReorderEstimate> {
    (0usize..5_000, 0usize..5_000).prop_map(|(a, b)| {
        let (reordered, total) = if a <= b { (a, b) } else { (b, a) };
        ReorderEstimate { reordered, total }
    })
}

/// Moments built from pushed observations — the only way real code
/// builds them, so round trips cover genuinely reachable states.
fn arb_moments() -> impl Strategy<Value = Moments> {
    proptest::collection::vec(1e-6f64..1e3, 0..12).prop_map(|vs| {
        let mut m = Moments::new();
        for v in vs {
            m.push(v);
        }
        m
    })
}

fn arb_group() -> impl Strategy<Value = GroupAgg> {
    (0u64..10_000, arb_est(), arb_est(), arb_moments()).prop_map(|(hosts, fwd, rev, fwd_rates)| {
        GroupAgg {
            hosts,
            fwd,
            rev,
            fwd_rates,
        }
    })
}

/// A full shard aggregation state: counters, rate moments, pooled
/// estimates, quantile sketch, grouped breakdowns and a gap profile.
fn arb_shard() -> impl Strategy<Value = ShardAggregator> {
    (
        proptest::collection::vec(0u64..1_000_000, 7),
        (
            arb_moments(),
            arb_moments(),
            proptest::collection::vec(0.0f64..1.0, 0..16),
        ),
        (arb_est(), arb_est(), arb_est()),
        proptest::collection::vec((0usize..LABELS.len(), arb_group()), 0..5),
        proptest::collection::vec((0u64..2_000, arb_est()), 0..5),
        0u64..1_000_000_000,
    )
        .prop_map(|(counts, rates, pooled, groups, gaps, events)| {
            let (fwd_rates, rev_rates, sketch_vals) = rates;
            let mut fwd_sketch = QuantileSketch::new();
            for v in &sketch_vals {
                fwd_sketch.push(*v);
            }
            let mut by_technique = BTreeMap::new();
            let mut by_personality = BTreeMap::new();
            let mut by_mechanism = BTreeMap::new();
            for (i, (slot, group)) in groups.into_iter().enumerate() {
                let label = LABELS[slot];
                match i % 3 {
                    0 => by_technique.insert(label, group),
                    1 => by_personality.insert(label, group),
                    _ => by_mechanism.insert(label, group),
                };
            }
            // `render` computes `hosts - reachable`, so keep the
            // generated state semantically valid: hosts bounds every
            // other counter.
            let hosts = counts.iter().copied().max().unwrap_or(0);
            let summary = CampaignSummary {
                hosts,
                reachable: counts[1],
                amenable: counts[2],
                constant_zero: counts[3],
                non_monotonic: counts[4],
                probe_failed: counts[5],
                reordering_hosts: counts[6],
                fwd_rates,
                rev_rates,
                fwd_pooled: pooled.0,
                rev_pooled: pooled.1,
                baseline_pooled: pooled.2,
                fwd_sketch,
                by_technique,
                by_personality,
                by_mechanism,
                failed: counts[5].min(hosts),
                degraded: counts[4].min(hosts - counts[5].min(hosts)),
                failure_rounds: counts[3],
                failure_taxonomy: BTreeMap::new(),
                gap_profile: gaps.into_iter().collect(),
            };
            ShardAggregator { summary, events }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A restored `ShardAggregator` is indistinguishable from the one
    /// that was saved: identical JSON, identical rendered report, and
    /// — the property resume actually relies on — merging restored
    /// states produces the same bits as merging the originals.
    #[test]
    fn shard_aggregator_round_trips_exactly(a in arb_shard(), b in arb_shard()) {
        let ra = ShardAggregator::from_json(&a.to_json()).expect("round trip a");
        let rb = ShardAggregator::from_json(&b.to_json()).expect("round trip b");
        prop_assert_eq!(ra.to_json(), a.to_json());
        prop_assert_eq!(ra.summary.render(), a.summary.render());

        let mut originals = ShardAggregator::default();
        originals.merge(&a);
        originals.merge(&b);
        let mut restored = ShardAggregator::default();
        restored.merge(&ra);
        restored.merge(&rb);
        prop_assert_eq!(restored.to_json(), originals.to_json());
        prop_assert_eq!(restored.summary.render(), originals.summary.render());
    }

    /// `WorkerTelemetry` checkpoint state is exact: restored equals the
    /// original on the full state (`Eq`, not a rendered view), and
    /// merging restored shards equals merging the live ones.
    #[test]
    fn telemetry_checkpoint_round_trips_exactly(ops in arb_ops(60), cut in 0usize..60) {
        let whole = apply(&ops);
        let restored = WorkerTelemetry::from_state_json(&whole.state_json())
            .expect("round trip");
        prop_assert_eq!(&restored, &whole);

        let cut = cut.min(ops.len());
        let (a, b) = (apply(&ops[..cut]), apply(&ops[cut..]));
        let ra = WorkerTelemetry::from_state_json(&a.state_json()).expect("shard a");
        let rb = WorkerTelemetry::from_state_json(&b.state_json()).expect("shard b");
        let mut merged_restored = ra.clone();
        merged_restored.merge(&rb);
        prop_assert_eq!(&merged_restored, &whole, "restored shards must merge to the serial build");
    }

    /// Corruption detection: flip any single bit of any byte of a
    /// sealed checkpoint and the load must fail — whether the flip
    /// lands in the payload, the schema tag, or the hash itself.
    #[test]
    fn any_flipped_bit_is_rejected(
        shard in arb_shard(),
        ops in arb_ops(20),
        pos in 0usize..100_000,
        bit in 0u32..6,
    ) {
        let mut ckpt = Checkpoint::new(CampaignSpec { shards: 3, ..CampaignSpec::default() });
        ckpt.completed.insert(2);
        ckpt.agg = shard;
        ckpt.telemetry = apply(&ops);
        ckpt.steals = 17;
        let good = ckpt.to_json();
        prop_assert!(Checkpoint::from_json(&good).is_ok(), "sanity: untouched doc loads");

        let mut bytes = good.clone().into_bytes();
        let i = pos % bytes.len();
        // Documents are ASCII, so flipping a low bit keeps the string
        // valid UTF-8 while guaranteeing the byte actually changed.
        bytes[i] ^= 1 << bit;
        let corrupt = String::from_utf8(bytes).expect("ascii stays utf8");
        prop_assert!(corrupt != good, "flip must change the document");
        prop_assert!(
            Checkpoint::from_json(&corrupt).is_err(),
            "flipped bit at byte {} must be rejected",
            i
        );
        prop_assert!(unseal(&corrupt).is_err() || Checkpoint::from_json(&corrupt).is_err());
    }
}
