//! The supervisor: plan shards, fan them out with a bounded in-flight
//! window, retry with backoff, checkpoint at every shard boundary.
//!
//! The orchestrator owns all durable state. Shard runners (threads
//! driving in-process shard runs or spawned `reorder survey --shard`
//! worker processes) only ever produce a [`ShardState`] and, when the
//! plan wants JSONL, an atomically-written part file; the supervisor
//! thread alone merges results into the [`Checkpoint`] and persists it
//! — write-temp-then-rename — after each completion. A crash between
//! any two instructions therefore loses at most the shards in flight,
//! and [`resume`] re-runs exactly those: every accumulator is a
//! commutative monoid with exact serialization, so the resumed merge
//! is bit-identical to an uninterrupted run's. Fault injection
//! ([`CampaignOptions::fail_after_shards`]) stops the supervisor after
//! N checkpoint writes, leaving the directory exactly as a `kill -9`
//! would — the CI crash-recovery smoke is built on it.

use crate::checkpoint::{atomic_write, AtomicFile, Checkpoint};
use crate::spec::CampaignSpec;
use reorder_core::telemetry::TelemetryMode;
use reorder_survey::{run_shard, ShardState};
use std::collections::VecDeque;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::Duration;

/// Runtime knobs of one orchestrated run. None of these can change
/// campaign bytes — they shape scheduling, supervision and telemetry
/// only (the output-affecting knobs live in [`CampaignSpec`]).
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Max shard tasks in flight at once (0 = all available cores).
    pub inflight: usize,
    /// Re-attempts per shard after its first failure.
    pub retries: u32,
    /// Base retry backoff in ms, doubled per attempt (capped at 2^6×).
    pub backoff_ms: u64,
    /// Telemetry mode shard runs record under.
    pub telemetry: TelemetryMode,
    /// Fault injection: stop the supervisor (as a crash would) after
    /// this many checkpoint writes in this run.
    pub fail_after_shards: Option<usize>,
    /// Honest-exit threshold: when the finished campaign's failed-host
    /// fraction exceeds this, [`CampaignReport::host_failures_exceeded`]
    /// is set so the caller exits nonzero. Outputs are still finalized
    /// — the threshold judges the campaign, it never truncates it.
    pub max_host_failures: Option<f64>,
    /// Print shard completion/retry lines to stderr.
    pub progress: bool,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            inflight: 0,
            retries: 2,
            backoff_ms: 250,
            telemetry: TelemetryMode::Off,
            fail_after_shards: None,
            max_host_failures: None,
            progress: false,
        }
    }
}

/// Runs one shard of the plan. Implementations must be shareable
/// across supervisor worker threads.
pub trait ShardRunner: Sync {
    /// Run shard `shard` (1-based) of `spec`, returning its state.
    /// When `part` is given, the shard's JSONL lines must end up there
    /// atomically (whole file or nothing).
    fn run(
        &self,
        spec: &CampaignSpec,
        shard: usize,
        part: Option<&Path>,
    ) -> Result<ShardState, String>;
}

/// Supervisor-mode runner: each shard runs on the calling thread via
/// the survey library entry point. No process boundary — the test and
/// benchmark harness, and the CLI's `--in-process` mode.
#[derive(Debug, Clone)]
pub struct InProcessRunner {
    /// Worker threads per shard run (0 = all cores; 1 is the sensible
    /// default when shards themselves run concurrently).
    pub workers: usize,
    /// Telemetry mode for the shard run.
    pub telemetry: TelemetryMode,
}

impl ShardRunner for InProcessRunner {
    fn run(
        &self,
        spec: &CampaignSpec,
        shard: usize,
        part: Option<&Path>,
    ) -> Result<ShardState, String> {
        let cfg = spec.config(self.workers, self.telemetry);
        match part {
            Some(path) => {
                let mut buf = Vec::new();
                let state = run_shard(&cfg, shard, spec.shards, Some(&mut buf))
                    .map_err(|e| e.to_string())?;
                atomic_write(path, &buf).map_err(|e| format!("writing {}: {e}", path.display()))?;
                Ok(state)
            }
            None => {
                run_shard(&cfg, shard, spec.shards, None::<&mut Vec<u8>>).map_err(|e| e.to_string())
            }
        }
    }
}

/// Process-mode runner: each shard is a spawned `reorder survey
/// --shard K/N --shard-state FILE` worker process. The child writes
/// its sealed [`ShardState`] and JSONL part atomically, so a killed
/// worker leaves no partial outputs; the parent reads the state file
/// back and verifies it names the expected shard.
#[derive(Debug, Clone)]
pub struct ProcessRunner {
    /// The `reorder` binary to spawn (usually `std::env::current_exe`).
    pub exe: PathBuf,
    /// `--workers` per worker process (0 = auto).
    pub workers: usize,
    /// Telemetry mode passed to workers.
    pub telemetry: TelemetryMode,
    /// Scratch directory for shard-state files.
    pub state_dir: PathBuf,
}

impl ShardRunner for ProcessRunner {
    fn run(
        &self,
        spec: &CampaignSpec,
        shard: usize,
        part: Option<&Path>,
    ) -> Result<ShardState, String> {
        let state_path = self.state_dir.join(format!("state-{shard:05}.json"));
        let _ = fs::remove_file(&state_path);
        let mut cmd = Command::new(&self.exe);
        cmd.arg("survey")
            .arg("--hosts")
            .arg(spec.hosts.to_string())
            .arg("--seed")
            .arg(spec.seed.to_string())
            .arg("--samples")
            .arg(spec.samples.to_string())
            .arg("--rounds")
            .arg(spec.rounds.to_string())
            .arg("--technique")
            .arg(spec.technique.to_string())
            .arg("--sim-version")
            .arg(spec.sim_version.to_string())
            .arg("--chaos")
            // Shortest-round-trip f64 display: the worker's
            // `(f * 1e6).round()` recovers the exact ppm value.
            .arg((spec.chaos_ppm as f64 / 1e6).to_string())
            .arg("--host-deadline-ms")
            .arg(spec.deadline_ms.to_string())
            .arg("--host-retries")
            .arg(spec.host_retries.to_string())
            .arg("--host-backoff-ms")
            .arg(spec.backoff_ms.to_string())
            .arg("--shard")
            .arg(format!("{shard}/{}", spec.shards))
            .arg("--shard-state")
            .arg(&state_path)
            .arg("--workers")
            .arg(if self.workers == 0 {
                "auto".to_string()
            } else {
                self.workers.to_string()
            });
        if !spec.baseline {
            cmd.arg("--no-baseline");
        }
        if !spec.reuse {
            cmd.arg("--no-reuse");
        }
        if spec.amenability_only {
            cmd.arg("--amenability-only");
        }
        if !spec.gaps_us.is_empty() {
            let gaps = spec
                .gaps_us
                .iter()
                .map(|g| g.to_string())
                .collect::<Vec<_>>()
                .join(",");
            cmd.arg("--gaps-us").arg(gaps);
        }
        if self.telemetry.is_enabled() {
            cmd.arg("--telemetry").arg(self.telemetry.to_string());
        }
        if let Some(part) = part {
            cmd.arg("--jsonl").arg(part);
        }
        let out = cmd
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .output()
            .map_err(|e| format!("spawning {}: {e}", self.exe.display()))?;
        if !out.status.success() {
            let stderr = String::from_utf8_lossy(&out.stderr);
            let tail = stderr
                .lines()
                .rev()
                .take(3)
                .collect::<Vec<_>>()
                .into_iter()
                .rev()
                .collect::<Vec<_>>()
                .join(" | ");
            return Err(format!(
                "shard {shard} worker exited with {}: {tail}",
                out.status
            ));
        }
        let text = fs::read_to_string(&state_path)
            .map_err(|e| format!("reading shard state {}: {e}", state_path.display()))?;
        let state = ShardState::from_json(&text)?;
        if state.shard != shard || state.shards != spec.shards {
            return Err(format!(
                "shard state {} is for shard {}/{}, wanted {shard}/{}",
                state_path.display(),
                state.shard,
                state.shards,
                spec.shards
            ));
        }
        let _ = fs::remove_file(&state_path);
        Ok(state)
    }
}

/// What one orchestrated run (fresh or resumed) hands back.
#[derive(Debug)]
pub struct CampaignReport {
    /// The final durable state (merged aggregation, telemetry, plan).
    pub checkpoint: Checkpoint,
    /// Shards already completed when this run started (resume credit).
    pub resumed: usize,
    /// Shards completed during this run.
    pub completed_now: usize,
    /// Retry attempts consumed across all shards.
    pub retries: u64,
    /// Shards that exhausted their retry budget, with the last error.
    /// Non-empty ⇒ the campaign is incomplete and the caller must exit
    /// nonzero.
    pub failed: Vec<(usize, String)>,
    /// Fault injection tripped: the supervisor stopped as a crash
    /// would. Resume with the same directory to continue.
    pub interrupted: bool,
    /// The finished campaign's failed-host fraction breached
    /// [`CampaignOptions::max_host_failures`]. Outputs were finalized
    /// anyway; the caller owes the user a nonzero exit.
    pub host_failures_exceeded: bool,
    /// Rendered summary file, written only when the campaign finished.
    pub summary_path: Option<PathBuf>,
    /// Concatenated campaign JSONL, written only when the campaign
    /// finished and the plan wants JSONL.
    pub jsonl_path: Option<PathBuf>,
}

/// The checkpoint document's path inside a campaign directory.
pub fn checkpoint_path(dir: &Path) -> PathBuf {
    dir.join("checkpoint.json")
}

/// Shard `shard`'s JSONL part file inside a campaign directory.
pub fn part_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join("shards").join(format!("shard-{shard:05}.jsonl"))
}

/// Start a campaign in `dir`. If `dir` already holds a checkpoint for
/// the same plan (equal fingerprint), the run resumes it — starting
/// twice is safe. A checkpoint for a *different* plan is an error, not
/// an overwrite.
pub fn start(
    dir: &Path,
    spec: CampaignSpec,
    opts: &CampaignOptions,
    runner: &dyn ShardRunner,
) -> io::Result<CampaignReport> {
    fs::create_dir_all(dir)?;
    let path = checkpoint_path(dir);
    let ckpt = if path.exists() {
        let existing = Checkpoint::load(&path)?;
        if existing.spec.fingerprint() != spec.fingerprint() {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!(
                    "{} holds a different campaign (fingerprint {:016x}, this plan {:016x}); \
                     use a fresh --dir or --resume it without plan flags",
                    dir.display(),
                    existing.spec.fingerprint(),
                    spec.fingerprint()
                ),
            ));
        }
        existing
    } else {
        // Persist the plan before any work: a kill before the first
        // shard completes still leaves a resumable directory.
        let ckpt = Checkpoint::new(spec);
        ckpt.store(&path)?;
        ckpt
    };
    drive(dir, ckpt, opts, runner)
}

/// Resume the campaign checkpointed in `dir`: verify the checkpoint's
/// integrity, skip completed shards, run the rest. Resuming a finished
/// campaign just re-finalizes its outputs (idempotent).
pub fn resume(
    dir: &Path,
    opts: &CampaignOptions,
    runner: &dyn ShardRunner,
) -> io::Result<CampaignReport> {
    let ckpt = Checkpoint::load(&checkpoint_path(dir))?;
    drive(dir, ckpt, opts, runner)
}

/// Supervision events workers report to the collector.
enum Event {
    Done {
        shard: usize,
        state: Box<ShardState>,
    },
    Retry {
        shard: usize,
        attempt: u32,
        error: String,
    },
    Failed {
        shard: usize,
        error: String,
    },
}

fn drive(
    dir: &Path,
    mut ckpt: Checkpoint,
    opts: &CampaignOptions,
    runner: &dyn ShardRunner,
) -> io::Result<CampaignReport> {
    let n = ckpt.spec.shards;
    let resumed = ckpt.completed.len();
    if ckpt.spec.jsonl {
        fs::create_dir_all(dir.join("shards"))?;
    }
    let pending: VecDeque<usize> = (1..=n).filter(|s| !ckpt.completed.contains(s)).collect();
    let todo = pending.len();
    let inflight = if opts.inflight == 0 {
        std::thread::available_parallelism().map_or(1, |p| p.get())
    } else {
        opts.inflight
    }
    .min(todo.max(1));

    let spec = ckpt.spec.clone();
    let queue = Mutex::new(pending);
    let abort = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel::<Event>();

    let mut failed: Vec<(usize, String)> = Vec::new();
    let mut retries = 0u64;
    let mut completed_now = 0usize;
    let mut interrupted = false;

    std::thread::scope(|scope| -> io::Result<()> {
        for _ in 0..inflight {
            let tx = tx.clone();
            let spec = &spec;
            let queue = &queue;
            let abort = &abort;
            scope.spawn(move || loop {
                if abort.load(Ordering::Relaxed) {
                    break;
                }
                let Some(shard) = queue.lock().expect("shard queue poisoned").pop_front() else {
                    break;
                };
                let part = spec.jsonl.then(|| part_path(dir, shard));
                let mut attempt = 0u32;
                loop {
                    match runner.run(spec, shard, part.as_deref()) {
                        Ok(state) => {
                            let _ = tx.send(Event::Done {
                                shard,
                                state: Box::new(state),
                            });
                            break;
                        }
                        Err(error) if attempt < opts.retries => {
                            let _ = tx.send(Event::Retry {
                                shard,
                                attempt,
                                error,
                            });
                            let backoff = opts.backoff_ms.saturating_mul(1u64 << attempt.min(6));
                            std::thread::sleep(Duration::from_millis(backoff));
                            attempt += 1;
                        }
                        Err(error) => {
                            let _ = tx.send(Event::Failed { shard, error });
                            break;
                        }
                    }
                }
            });
        }
        drop(tx);

        // The collector: the only code that touches the checkpoint.
        let mut settled = 0usize;
        while settled < todo {
            let Ok(event) = rx.recv() else {
                break;
            };
            match event {
                Event::Done { shard, state } => {
                    settled += 1;
                    completed_now += 1;
                    ckpt.completed.insert(shard);
                    ckpt.agg.merge(&state.agg);
                    ckpt.telemetry.merge(&state.telemetry);
                    ckpt.steals += state.steals;
                    ckpt.store(&checkpoint_path(dir))?;
                    if opts.progress {
                        eprintln!(
                            "campaign: shard {shard}/{n} done ({}/{n} total)",
                            ckpt.completed.len()
                        );
                    }
                    if opts.fail_after_shards == Some(completed_now) {
                        // Simulated crash: stop supervising. Workers
                        // drain (their results are discarded, exactly
                        // as a kill would discard them) and the
                        // directory is left as the crash left it.
                        interrupted = true;
                        abort.store(true, Ordering::Relaxed);
                        queue.lock().expect("shard queue poisoned").clear();
                        break;
                    }
                }
                Event::Retry {
                    shard,
                    attempt,
                    error,
                } => {
                    retries += 1;
                    if opts.progress {
                        eprintln!(
                            "campaign: shard {shard} attempt {} failed, retrying: {error}",
                            attempt + 1
                        );
                    }
                }
                Event::Failed { shard, error } => {
                    settled += 1;
                    failed.push((shard, error));
                }
            }
        }
        Ok(())
    })?;

    failed.sort_by_key(|&(shard, _)| shard);
    let finished = !interrupted && failed.is_empty() && ckpt.completed.len() == n;
    let (summary_path, jsonl_path) = if finished {
        (
            Some(finalize_summary(dir, &ckpt)?),
            finalize_jsonl(dir, &ckpt)?,
        )
    } else {
        (None, None)
    };
    let host_failures_exceeded = finished
        && opts.max_host_failures.is_some_and(|frac| {
            let s = &ckpt.agg.summary;
            s.hosts > 0 && (s.failed as f64) > frac * s.hosts as f64
        });
    Ok(CampaignReport {
        checkpoint: ckpt,
        resumed,
        completed_now,
        retries,
        failed,
        interrupted,
        host_failures_exceeded,
        summary_path,
        jsonl_path,
    })
}

/// Write the rendered campaign summary (atomic). Pure function of the
/// merged aggregation state, so a resumed campaign's file is
/// byte-identical to an uninterrupted one's.
fn finalize_summary(dir: &Path, ckpt: &Checkpoint) -> io::Result<PathBuf> {
    let path = dir.join("summary.txt");
    atomic_write(&path, ckpt.agg.summary.render().as_bytes())?;
    Ok(path)
}

/// Concatenate the shard part files, in shard order, into the campaign
/// JSONL (atomic). Shard slices are contiguous id ranges, so the
/// concatenation is byte-identical to an unsharded `reorder survey
/// --jsonl` of the same spec.
fn finalize_jsonl(dir: &Path, ckpt: &Checkpoint) -> io::Result<Option<PathBuf>> {
    if !ckpt.spec.jsonl {
        return Ok(None);
    }
    let path = dir.join("campaign.jsonl");
    let mut out = AtomicFile::create(&path)?;
    for shard in 1..=ckpt.spec.shards {
        let part = part_path(dir, shard);
        let bytes = fs::read(&part).map_err(|e| {
            io::Error::new(
                e.kind(),
                format!("shard part {} missing or unreadable: {e}", part.display()),
            )
        })?;
        out.write_all(&bytes)?;
    }
    out.commit()?;
    Ok(Some(path))
}
