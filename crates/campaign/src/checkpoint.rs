//! The crash-safety layer: atomic file writes and the sealed,
//! schema-versioned `reorder.checkpoint/1` document.
//!
//! Every file the orchestrator (or the CLI's `--jsonl`/`--metrics`
//! sinks) persists goes through write-temp-then-rename: a reader can
//! observe the old file or the new file, never a truncated hybrid.
//! The checkpoint document embeds the campaign spec, the
//! completed-shard set, the exact merged aggregation state and
//! telemetry, and is sealed with a trailing FNV-1a integrity hash —
//! a flipped byte is rejected on load, not merged silently.

use crate::spec::CampaignSpec;
use reorder_core::jsonx;
use reorder_core::telemetry::WorkerTelemetry;
use reorder_survey::{seal, unseal, ShardAggregator};
use std::collections::BTreeSet;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// Version tag of the checkpoint document. Bump on any shape change;
/// readers reject other versions before parsing further.
pub const CHECKPOINT_SCHEMA: &str = "reorder.checkpoint/1";

/// The temp-file path `atomic_write` and [`AtomicFile`] stage into:
/// same directory as the destination (rename must not cross a
/// filesystem), name suffixed so a crashed writer's leftovers are
/// recognizable and never mistaken for the real file.
fn staging_path(dst: &Path) -> PathBuf {
    let mut name = dst.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".tmp.{}", std::process::id()));
    dst.with_file_name(name)
}

/// Write `bytes` to `dst` atomically: stage into a same-directory temp
/// file, flush it to disk, then rename over the destination. An
/// interrupt at any point leaves either the previous `dst` or no
/// `dst` — never a truncated, valid-looking file.
pub fn atomic_write(dst: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = staging_path(dst);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    fs::rename(&tmp, dst)?;
    Ok(())
}

/// A streaming atomic file: writes buffer into the staging temp file
/// and only [`AtomicFile::commit`] renames it into place. Dropping
/// without committing removes the temp file, leaving any previous
/// destination untouched — the streaming counterpart of
/// [`atomic_write`] for sinks like `--jsonl` that are fed
/// incrementally.
#[derive(Debug)]
pub struct AtomicFile {
    dst: PathBuf,
    tmp: PathBuf,
    file: Option<BufWriter<File>>,
}

impl AtomicFile {
    /// Open a staging file for `dst`.
    pub fn create(dst: &Path) -> io::Result<AtomicFile> {
        let tmp = staging_path(dst);
        let file = File::create(&tmp)?;
        Ok(AtomicFile {
            dst: dst.to_path_buf(),
            tmp,
            file: Some(BufWriter::new(file)),
        })
    }

    /// Flush, sync and rename the staged bytes into place.
    pub fn commit(mut self) -> io::Result<()> {
        let mut writer = self.file.take().expect("commit consumes the writer");
        writer.flush()?;
        let file = writer
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))?;
        file.sync_all()?;
        drop(file);
        fs::rename(&self.tmp, &self.dst)
    }
}

impl Write for AtomicFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.file.as_mut().expect("write after commit").write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.file.as_mut().expect("flush after commit").flush()
    }
}

impl Drop for AtomicFile {
    fn drop(&mut self) {
        if self.file.take().is_some() {
            // Uncommitted: discard the staging file; `dst` never saw
            // a byte.
            let _ = fs::remove_file(&self.tmp);
        }
    }
}

/// The durable state of a campaign in flight: the plan, which shards
/// have completed, and the exact merged result of those shards.
/// Persisted at every shard boundary; a resumed campaign merges the
/// remaining shards into this state and — because every accumulator is
/// a commutative monoid with exact serialization — produces bytes
/// identical to an uninterrupted run.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The campaign plan this state belongs to.
    pub spec: CampaignSpec,
    /// 1-based ids of shards whose state is merged in `agg`.
    pub completed: BTreeSet<usize>,
    /// Exact merged aggregation state of the completed shards.
    pub agg: ShardAggregator,
    /// Merged telemetry of the completed shards.
    pub telemetry: WorkerTelemetry,
    /// Scheduler steals summed over completed shards.
    pub steals: u64,
}

impl Checkpoint {
    /// A fresh checkpoint: plan recorded, nothing completed.
    pub fn new(spec: CampaignSpec) -> Checkpoint {
        Checkpoint {
            spec,
            completed: BTreeSet::new(),
            agg: ShardAggregator::default(),
            telemetry: WorkerTelemetry::new(),
            steals: 0,
        }
    }

    /// Serialize as a sealed `reorder.checkpoint/1` document.
    pub fn to_json(&self) -> String {
        let completed = self
            .completed
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join(",");
        seal(&format!(
            "{{\"schema\":\"{CHECKPOINT_SCHEMA}\",\"fingerprint\":\"{:016x}\",\
             \"spec\":{},\"completed\":[{completed}],\"steals\":{},\"agg\":{},\
             \"telemetry\":{}}}",
            self.spec.fingerprint(),
            self.spec.to_json(),
            self.steals,
            self.agg.to_json(),
            self.telemetry.state_json(),
        ))
    }

    /// Parse a sealed checkpoint: integrity hash first, then schema
    /// version, then the spec (whose recomputed fingerprint must match
    /// the stored one), then the exact state.
    pub fn from_json(text: &str) -> Result<Checkpoint, String> {
        let payload = unseal(text)?;
        let schema = jsonx::str_field(&payload, "schema")?;
        if schema != CHECKPOINT_SCHEMA {
            return Err(format!(
                "unsupported checkpoint schema `{schema}` (this build reads {CHECKPOINT_SCHEMA})"
            ));
        }
        let spec = CampaignSpec::from_json(jsonx::field(&payload, "spec")?)?;
        let stored = jsonx::str_field(&payload, "fingerprint")?;
        let expect = format!("{:016x}", spec.fingerprint());
        if stored != expect {
            return Err(format!(
                "checkpoint fingerprint {stored} does not match its spec ({expect})"
            ));
        }
        let mut completed = BTreeSet::new();
        for raw in jsonx::elements(jsonx::field(&payload, "completed")?)? {
            let shard: usize = raw.trim().parse().map_err(|_| "non-integer shard id")?;
            if shard == 0 || shard > spec.shards {
                return Err(format!(
                    "completed shard {shard} outside plan 1..={}",
                    spec.shards
                ));
            }
            completed.insert(shard);
        }
        Ok(Checkpoint {
            spec,
            completed,
            steals: jsonx::int_field(&payload, "steals")?,
            agg: ShardAggregator::from_json(jsonx::field(&payload, "agg")?)?,
            telemetry: WorkerTelemetry::from_state_json(jsonx::field(&payload, "telemetry")?)?,
        })
    }

    /// Persist atomically at `path`.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, format!("{}\n", self.to_json()).as_bytes())
    }

    /// Load and verify a checkpoint from `path`.
    pub fn load(path: &Path) -> io::Result<Checkpoint> {
        let text = fs::read_to_string(path)?;
        Checkpoint::from_json(&text).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: {e}", path.display()),
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("reorder_ckpt_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_whole_files() {
        let dir = tmpdir("aw");
        let dst = dir.join("out.json");
        atomic_write(&dst, b"first version\n").unwrap();
        atomic_write(&dst, b"second\n").unwrap();
        assert_eq!(fs::read_to_string(&dst).unwrap(), "second\n");
        // No staging leftovers after a successful write.
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_file_commits_or_vanishes() {
        let dir = tmpdir("af");
        let dst = dir.join("stream.jsonl");
        // Dropped uncommitted: destination never appears.
        {
            let mut f = AtomicFile::create(&dst).unwrap();
            f.write_all(b"partial").unwrap();
        }
        assert!(!dst.exists(), "uncommitted stream must not materialize");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 0, "no temp leftovers");
        // Committed: all bytes, exactly once.
        let mut f = AtomicFile::create(&dst).unwrap();
        f.write_all(b"line1\nline2\n").unwrap();
        f.commit().unwrap();
        assert_eq!(fs::read_to_string(&dst).unwrap(), "line1\nline2\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trips_through_disk() {
        let dir = tmpdir("rt");
        let path = dir.join("checkpoint.json");
        let mut ckpt = Checkpoint::new(CampaignSpec {
            shards: 4,
            hosts: 40,
            ..CampaignSpec::default()
        });
        ckpt.completed.insert(2);
        ckpt.completed.insert(4);
        ckpt.steals = 3;
        ckpt.store(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        assert_eq!(loaded.spec, ckpt.spec);
        assert_eq!(loaded.completed, ckpt.completed);
        assert_eq!(loaded.steals, 3);
        assert_eq!(loaded.to_json(), ckpt.to_json());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_rejects_corruption_and_mismatches() {
        let ckpt = Checkpoint::new(CampaignSpec::default());
        let good = ckpt.to_json();
        // Flipped byte in the middle of the payload: integrity hash.
        let mut corrupt = good.clone().into_bytes();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x20;
        if let Ok(s) = std::str::from_utf8(&corrupt) {
            assert!(Checkpoint::from_json(s).is_err(), "flip must be rejected");
        }
        // A doctored spec with a re-sealed document: fingerprint check.
        let tampered = seal(
            &unseal(&good)
                .unwrap()
                .replace("\"hosts\":50", "\"hosts\":51"),
        );
        let err = Checkpoint::from_json(&tampered).unwrap_err();
        assert!(err.contains("fingerprint"), "{err}");
        // Completed shard outside the plan.
        let bad_shard = seal(
            &unseal(&good)
                .unwrap()
                .replace("\"completed\":[]", "\"completed\":[9]"),
        );
        assert!(Checkpoint::from_json(&bad_shard).is_err());
    }
}
