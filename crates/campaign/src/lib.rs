//! # reorder-campaign
//!
//! A crash-safe multi-process campaign orchestrator for the survey
//! engine: plan a campaign as an ordered set of shard tasks, fan them
//! out across worker processes (or supervisor threads), supervise with
//! per-shard retry/backoff and a bounded in-flight window, and persist
//! a schema-versioned checkpoint at every shard boundary so an
//! interrupted campaign resumes losslessly.
//!
//! The determinism contract is the headline: **a resumed campaign's
//! merged summary and concatenated JSONL are byte-identical to an
//! uninterrupted run's.** Three laws compose to make that true:
//!
//! 1. every piece of aggregation and telemetry state is a commutative
//!    monoid (PR 6), so shard states merge to the same bits in any
//!    completion order;
//! 2. those states serialize exactly — integer fixed-point documents,
//!    never rounded floats — so a state restored from a checkpoint is
//!    the state that was saved ([`reorder_survey::ShardState`]);
//! 3. shard JSONL slices are contiguous id ranges that concatenate to
//!    the unsharded report byte-for-byte (PR 3).
//!
//! Crash safety is mechanical, not probabilistic: every durable file —
//! checkpoint, shard parts, finalized outputs — is written
//! temp-then-rename ([`checkpoint::atomic_write`]), so any interrupt
//! leaves either the previous version or nothing, and the checkpoint
//! document carries an FNV-1a integrity hash that rejects a flipped
//! byte on load. The fault-injection hook
//! ([`CampaignOptions::fail_after_shards`]) stops the supervisor after
//! N checkpoint writes, byte-for-byte equivalent to `kill -9`, which
//! is how CI proves the recovery path instead of claiming it.
//!
//! ```
//! use reorder_campaign::{start, CampaignOptions, CampaignSpec, InProcessRunner};
//!
//! let dir = std::env::temp_dir().join(format!("reorder_doc_campaign_{}", std::process::id()));
//! let spec = CampaignSpec {
//!     hosts: 12,
//!     shards: 3,
//!     samples: 3,
//!     baseline: false,
//!     ..CampaignSpec::default()
//! };
//! let runner = InProcessRunner { workers: 1, telemetry: Default::default() };
//! let report = start(&dir, spec, &CampaignOptions::default(), &runner).unwrap();
//! assert_eq!(report.checkpoint.completed.len(), 3);
//! assert_eq!(report.checkpoint.agg.summary.hosts, 12);
//! assert!(report.failed.is_empty());
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
pub mod orchestrator;
pub mod spec;

pub use checkpoint::{atomic_write, AtomicFile, Checkpoint, CHECKPOINT_SCHEMA};
pub use orchestrator::{
    checkpoint_path, part_path, resume, start, CampaignOptions, CampaignReport, InProcessRunner,
    ProcessRunner, ShardRunner,
};
pub use spec::CampaignSpec;
