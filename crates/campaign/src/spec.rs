//! The campaign plan: every knob that affects output bytes, and
//! nothing that doesn't.
//!
//! A [`CampaignSpec`] is the identity of a campaign. It serializes to
//! canonical JSON whose FNV-1a hash is the campaign **fingerprint**:
//! two invocations with equal fingerprints produce byte-identical
//! merged output, so a resume is only allowed against a checkpoint
//! whose fingerprint matches. Runtime knobs — worker threads, in-flight
//! window, retry budget, telemetry mode — are deliberately excluded:
//! they change how fast the bytes arrive, never which bytes.

use reorder_core::jsonx;
use reorder_core::scenario::SimVersion;
use reorder_core::telemetry::TelemetryMode;
use reorder_survey::{Budget, CampaignConfig, PopulationModel, TechniqueChoice};
use std::time::Duration;

/// Parse a JSON `true`/`false` field.
fn bool_field(text: &str, key: &str) -> Result<bool, String> {
    match jsonx::field(text, key)? {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(format!("`{key}` is not a bool: `{other}`")),
    }
}

/// The output-affecting configuration of one campaign, plus its shard
/// plan. Field set mirrors [`CampaignConfig`] minus the runtime knobs
/// (`workers`, `pool`, `keep_reports`, `telemetry`, `progress`) that
/// cannot change campaign bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// Hosts to survey across all shards.
    pub hosts: usize,
    /// Master seed; every host seed derives from it.
    pub seed: u64,
    /// Samples per technique run.
    pub samples: usize,
    /// Measurement rounds per host.
    pub rounds: usize,
    /// Technique selection.
    pub technique: TechniqueChoice,
    /// Take the data-transfer reverse-path baseline.
    pub baseline: bool,
    /// Amenability verdicts only, no measurement.
    pub amenability_only: bool,
    /// Inter-packet gaps (µs) for a campaign-level gap profile.
    pub gaps_us: Vec<u64>,
    /// Share one session across each host's phases (affects the
    /// measurement protocol, hence bytes).
    pub reuse: bool,
    /// Simulation format version (output differs per version).
    pub sim_version: SimVersion,
    /// Hostile-host rate in parts per million (the CLI's `--chaos`).
    /// Changes which hosts are hostile, hence bytes.
    pub chaos_ppm: u32,
    /// Per-host budget deadline, milliseconds of simulated time.
    /// Changes which phases a slow host completes, hence bytes.
    pub deadline_ms: u64,
    /// Transient-failure retries per measurement round.
    pub host_retries: u32,
    /// Base retry backoff, milliseconds (doubled per retry, charged
    /// against the deadline).
    pub backoff_ms: u64,
    /// Number of shard tasks the campaign is planned as.
    pub shards: usize,
    /// Whether shards produce JSONL part files (concatenated at
    /// finalize into the campaign report).
    pub jsonl: bool,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        let base = CampaignConfig::default();
        let budget = Budget::default();
        CampaignSpec {
            hosts: base.hosts,
            seed: base.seed,
            samples: base.samples,
            rounds: base.rounds,
            technique: base.technique,
            baseline: base.baseline,
            amenability_only: base.amenability_only,
            gaps_us: base.gaps_us,
            reuse: base.reuse,
            sim_version: base.sim_version,
            chaos_ppm: 0,
            deadline_ms: budget.deadline.as_millis() as u64,
            host_retries: budget.max_retries,
            backoff_ms: budget.backoff.as_millis() as u64,
            shards: 1,
            jsonl: false,
        }
    }
}

impl CampaignSpec {
    /// Canonical JSON form — fixed key order, no whitespace — whose
    /// bytes define the campaign [`CampaignSpec::fingerprint`].
    pub fn to_json(&self) -> String {
        let gaps = self
            .gaps_us
            .iter()
            .map(|g| g.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"hosts\":{},\"seed\":{},\"samples\":{},\"rounds\":{},\"technique\":\"{}\",\
             \"baseline\":{},\"amenability_only\":{},\"gaps_us\":[{gaps}],\"reuse\":{},\
             \"sim_version\":\"{}\",\"chaos_ppm\":{},\"deadline_ms\":{},\"host_retries\":{},\
             \"backoff_ms\":{},\"shards\":{},\"jsonl\":{}}}",
            self.hosts,
            self.seed,
            self.samples,
            self.rounds,
            self.technique,
            self.baseline,
            self.amenability_only,
            self.reuse,
            self.sim_version,
            self.chaos_ppm,
            self.deadline_ms,
            self.host_retries,
            self.backoff_ms,
            self.shards,
            self.jsonl,
        )
    }

    /// Parse a [`CampaignSpec::to_json`] document. Every field is
    /// required; an out-of-range shard count is rejected here so no
    /// planner downstream sees `shards == 0`.
    pub fn from_json(text: &str) -> Result<CampaignSpec, String> {
        let mut gaps_us = Vec::new();
        for raw in jsonx::elements(jsonx::field(text, "gaps_us")?)? {
            gaps_us.push(raw.trim().parse().map_err(|_| "non-integer gap")?);
        }
        let spec = CampaignSpec {
            hosts: jsonx::int_field(text, "hosts")?,
            seed: jsonx::int_field(text, "seed")?,
            samples: jsonx::int_field(text, "samples")?,
            rounds: jsonx::int_field(text, "rounds")?,
            technique: TechniqueChoice::parse(jsonx::str_field(text, "technique")?)?,
            baseline: bool_field(text, "baseline")?,
            amenability_only: bool_field(text, "amenability_only")?,
            gaps_us,
            reuse: bool_field(text, "reuse")?,
            sim_version: jsonx::str_field(text, "sim_version")?.parse()?,
            chaos_ppm: jsonx::int_field(text, "chaos_ppm")?,
            deadline_ms: jsonx::int_field(text, "deadline_ms")?,
            host_retries: jsonx::int_field(text, "host_retries")?,
            backoff_ms: jsonx::int_field(text, "backoff_ms")?,
            shards: jsonx::int_field(text, "shards")?,
            jsonl: bool_field(text, "jsonl")?,
        };
        if spec.shards == 0 {
            return Err("campaign wants at least 1 shard".into());
        }
        Ok(spec)
    }

    /// The campaign identity hash: FNV-1a over the canonical JSON.
    /// Equal fingerprints ⇒ byte-identical merged output; a resume
    /// against a different fingerprint is refused.
    pub fn fingerprint(&self) -> u64 {
        jsonx::fnv1a64(self.to_json().as_bytes())
    }

    /// Materialize the engine configuration for one shard run,
    /// attaching the runtime knobs the spec deliberately omits.
    pub fn config(&self, workers: usize, telemetry: TelemetryMode) -> CampaignConfig {
        CampaignConfig {
            hosts: self.hosts,
            workers,
            seed: self.seed,
            samples: self.samples,
            rounds: self.rounds,
            technique: self.technique,
            baseline: self.baseline,
            amenability_only: self.amenability_only,
            gaps_us: self.gaps_us.clone(),
            reuse: self.reuse,
            sim_version: self.sim_version,
            keep_reports: false,
            telemetry,
            model: PopulationModel {
                chaos_ppm: self.chaos_ppm,
                ..PopulationModel::default()
            },
            budget: Budget {
                deadline: Duration::from_millis(self.deadline_ms),
                max_retries: self.host_retries,
                backoff: Duration::from_millis(self.backoff_ms),
            },
            ..CampaignConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_json_round_trips() {
        let spec = CampaignSpec {
            hosts: 1234,
            seed: 42,
            samples: 7,
            rounds: 2,
            technique: TechniqueChoice::parse("syn").unwrap(),
            baseline: false,
            amenability_only: true,
            gaps_us: vec![0, 50, 300],
            reuse: false,
            sim_version: "1".parse().unwrap(),
            chaos_ppm: 200_000,
            deadline_ms: 45_000,
            host_retries: 2,
            backoff_ms: 125,
            shards: 16,
            jsonl: true,
        };
        let restored = CampaignSpec::from_json(&spec.to_json()).expect("round trip");
        assert_eq!(restored, spec);
        assert_eq!(restored.fingerprint(), spec.fingerprint());
    }

    #[test]
    fn fingerprint_tracks_output_affecting_fields() {
        let base = CampaignSpec::default();
        for (label, tweaked) in [
            (
                "hosts",
                CampaignSpec {
                    hosts: 51,
                    ..base.clone()
                },
            ),
            (
                "seed",
                CampaignSpec {
                    seed: 78,
                    ..base.clone()
                },
            ),
            (
                "shards",
                CampaignSpec {
                    shards: 2,
                    ..base.clone()
                },
            ),
            (
                "jsonl",
                CampaignSpec {
                    jsonl: true,
                    ..base.clone()
                },
            ),
            (
                "reuse",
                CampaignSpec {
                    reuse: false,
                    ..base.clone()
                },
            ),
            (
                "chaos_ppm",
                CampaignSpec {
                    chaos_ppm: 200_000,
                    ..base.clone()
                },
            ),
            (
                "deadline_ms",
                CampaignSpec {
                    deadline_ms: 1_000,
                    ..base.clone()
                },
            ),
            (
                "host_retries",
                CampaignSpec {
                    host_retries: 3,
                    ..base.clone()
                },
            ),
        ] {
            assert_ne!(
                tweaked.fingerprint(),
                base.fingerprint(),
                "{label} must change the fingerprint"
            );
        }
    }

    #[test]
    fn config_carries_chaos_and_budget() {
        let spec = CampaignSpec {
            chaos_ppm: 123,
            deadline_ms: 5_000,
            host_retries: 2,
            backoff_ms: 100,
            ..CampaignSpec::default()
        };
        let cfg = spec.config(2, TelemetryMode::Off);
        assert_eq!(cfg.model.chaos_ppm, 123);
        assert_eq!(cfg.budget.deadline, Duration::from_secs(5));
        assert_eq!(cfg.budget.max_retries, 2);
        assert_eq!(cfg.budget.backoff, Duration::from_millis(100));
        // The default spec materializes the default engine budget.
        let plain = CampaignSpec::default().config(1, TelemetryMode::Off);
        assert_eq!(plain.budget, Budget::default());
        assert_eq!(plain.model.chaos_ppm, 0);
    }

    #[test]
    fn spec_rejects_zero_shards_and_malformed_fields() {
        let zero = CampaignSpec::default()
            .to_json()
            .replace("\"shards\":1", "\"shards\":0");
        assert!(CampaignSpec::from_json(&zero).is_err());
        assert!(CampaignSpec::from_json("{}").is_err());
        let bad = CampaignSpec::default()
            .to_json()
            .replace("\"technique\":\"auto\"", "\"technique\":\"warp\"");
        assert!(CampaignSpec::from_json(&bad).is_err());
    }
}
