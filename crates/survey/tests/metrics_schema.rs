//! Pinned golden of the `reorder.metrics/1` JSON document: a
//! deterministic hand-built [`CampaignTelemetry`] rendered with a
//! pinned `wall_s`, compared byte-for-byte against
//! `tests/metrics_schema.txt`. Any key rename, reordering, or float
//! formatting change shows up as a reviewable golden diff (and should
//! come with a schema version bump).
//!
//! On an intended change, regenerate with
//!
//! ```sh
//! REORDER_API_BLESS=1 cargo test -p reorder-survey --test metrics_schema
//! ```

use reorder_core::telemetry::{TelemetryMode, WorkerTelemetry};
use reorder_survey::metrics::CampaignTelemetry;
use std::fs;
use std::path::Path;

/// A worker's plausible end-of-campaign state, scaled so the two
/// workers differ (merge must actually do work in the golden).
fn worker(mode: TelemetryMode, scale: u64) -> WorkerTelemetry {
    let mut tel = WorkerTelemetry::new();
    tel.count("netsim.events", 1_000 * scale);
    tel.count("pool.hits", 10 * scale - 1);
    tel.count("pool.misses", 1);
    tel.count("sched.tasks", 10 * scale);
    tel.count("sched.steals", scale - 1);
    for i in 0..10 * scale {
        tel.record_span("host", mode, 0.001 + 0.0005 * i as f64);
    }
    tel.record_span("amenability", mode, 0.0002);
    tel.record_span("measure", mode, 0.0015);
    tel
}

fn document(mode: TelemetryMode) -> String {
    let tel = CampaignTelemetry {
        mode,
        per_worker: vec![worker(mode, 1), worker(mode, 2)],
        campaign: {
            let mut c = WorkerTelemetry::new();
            c.count("agg.absorbs", 30);
            c.count("agg.merges", 1);
            c
        },
    };
    tel.to_json(30, 77, 3_000, 1, 1.5)
}

#[test]
fn metrics_document_matches_schema_golden() {
    let golden_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/metrics_schema.txt");
    let current = format!(
        "# reorder.metrics/1 golden: deterministic telemetry, wall_s pinned at 1.5.\n\
         # Regenerate: REORDER_API_BLESS=1 cargo test -p reorder-survey --test metrics_schema\n\
         {}\n{}\n",
        document(TelemetryMode::Summary),
        document(TelemetryMode::Full),
    );
    if std::env::var_os("REORDER_API_BLESS").is_some() {
        fs::write(&golden_path, &current).expect("write golden file");
        return;
    }
    let golden = fs::read_to_string(&golden_path).unwrap_or_default();
    assert!(
        golden == current,
        "the metrics document's shape changed.\n\
         If intended, bump METRICS_SCHEMA if keys moved, regenerate with\n\
         REORDER_API_BLESS=1 cargo test -p reorder-survey --test metrics_schema\n\
         and commit tests/metrics_schema.txt with the change.\n\n\
         --- expected (tests/metrics_schema.txt) ---\n{golden}\n\
         --- actual ---\n{current}"
    );
}

#[test]
fn golden_inputs_cover_both_modes() {
    // Self-check: the Summary document must not carry quantiles, the
    // Full one must — so the golden actually pins both shapes.
    let summary = document(TelemetryMode::Summary);
    let full = document(TelemetryMode::Full);
    assert!(!summary.contains("\"p50_s\""), "{summary}");
    assert!(full.contains("\"p50_s\""), "{full}");
    assert!(full.contains("\"p99_s\""), "{full}");
}
