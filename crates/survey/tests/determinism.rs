//! The campaign engine's headline guarantee: a campaign's output is a
//! pure function of its config — the worker count changes wall-clock
//! time, never a byte of the report.

use reorder_survey::{run_campaign, CampaignConfig, TechniqueChoice};

fn campaign_jsonl(hosts: usize, workers: usize, seed: u64) -> (Vec<u8>, String) {
    let cfg = CampaignConfig {
        hosts,
        workers,
        seed,
        samples: 4,
        technique: TechniqueChoice::Auto,
        baseline: true,
        ..CampaignConfig::default()
    };
    let mut buf = Vec::new();
    let out = run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
    assert_eq!(out.reports.len(), hosts);
    (buf, out.summary.render())
}

/// A 200-host campaign with `--workers 8` produces a byte-identical
/// JSONL report (and summary) to `--workers 1` under the same master
/// seed.
#[test]
fn workers_8_matches_workers_1_byte_for_byte() {
    let (serial, serial_summary) = campaign_jsonl(200, 1, 1);
    let (parallel, parallel_summary) = campaign_jsonl(200, 8, 1);
    assert_eq!(serial.len(), parallel.len());
    assert!(
        serial == parallel,
        "JSONL reports differ between worker counts"
    );
    assert_eq!(serial_summary, parallel_summary);
    assert_eq!(serial.iter().filter(|&&b| b == b'\n').count(), 200);
}

/// Reruns with the same seed are identical; a different seed is not.
#[test]
fn seed_controls_the_report() {
    let (a, _) = campaign_jsonl(40, 3, 9);
    let (b, _) = campaign_jsonl(40, 3, 9);
    let (c, _) = campaign_jsonl(40, 3, 10);
    assert_eq!(a, b);
    assert_ne!(a, c);
}
