//! The campaign engine's headline guarantee: a campaign's output is a
//! pure function of its config — the worker count changes wall-clock
//! time, never a byte of the report. Since campaign format v2 the
//! config includes the simulation version: output is byte-identical
//! per version (v1's replayed cross traffic, v2's stationary draws),
//! and the versions intentionally differ from each other.

use reorder_survey::{run_campaign, CampaignConfig, SimVersion, TechniqueChoice};

fn campaign_jsonl(hosts: usize, workers: usize, seed: u64) -> (Vec<u8>, String) {
    let cfg = CampaignConfig {
        hosts,
        workers,
        seed,
        samples: 4,
        technique: TechniqueChoice::Auto,
        baseline: true,
        ..CampaignConfig::default()
    };
    let mut buf = Vec::new();
    let out = run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
    assert_eq!(out.reports.len(), hosts);
    (buf, out.summary.render())
}

/// A 200-host campaign with `--workers 8` produces a byte-identical
/// JSONL report (and summary) to `--workers 1` under the same master
/// seed.
#[test]
fn workers_8_matches_workers_1_byte_for_byte() {
    let (serial, serial_summary) = campaign_jsonl(200, 1, 1);
    let (parallel, parallel_summary) = campaign_jsonl(200, 8, 1);
    assert_eq!(serial.len(), parallel.len());
    assert!(
        serial == parallel,
        "JSONL reports differ between worker counts"
    );
    assert_eq!(serial_summary, parallel_summary);
    assert_eq!(serial.iter().filter(|&&b| b == b'\n').count(), 200);
}

/// Reruns with the same seed are identical; a different seed is not.
#[test]
fn seed_controls_the_report() {
    let (a, _) = campaign_jsonl(40, 3, 9);
    let (b, _) = campaign_jsonl(40, 3, 9);
    let (c, _) = campaign_jsonl(40, 3, 10);
    assert_eq!(a, b);
    assert_ne!(a, c);
}

/// The `--shard K/N` contract: concatenating the JSONL outputs of
/// shards 1..=N (in shard order) is byte-identical to the unsharded
/// campaign — N processes can split one master seed's id space and
/// `cat` their reports back together.
#[test]
fn concatenated_shards_equal_the_unsharded_report() {
    let run = |shard: Option<(usize, usize)>| -> Vec<u8> {
        let cfg = CampaignConfig {
            hosts: 31, // deliberately not divisible by the shard count
            workers: 2,
            seed: 5,
            samples: 3,
            technique: TechniqueChoice::Auto,
            baseline: false,
            shard,
            ..CampaignConfig::default()
        };
        let mut buf = Vec::new();
        run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
        buf
    };
    let whole = run(None);
    let mut stitched = Vec::new();
    for k in 1..=4 {
        stitched.extend(run(Some((k, 4))));
    }
    assert_eq!(
        whole, stitched,
        "shard concatenation must reproduce the unsharded JSONL byte-for-byte"
    );
    // A single shard covering everything is also the whole report.
    assert_eq!(whole, run(Some((1, 1))));
}

/// Connection reuse is a per-host speed path: it must not break the
/// worker-count determinism guarantee, and reuse-off output must also
/// be deterministic.
#[test]
fn reuse_off_is_deterministic_across_workers_too() {
    let run = |workers: usize| -> Vec<u8> {
        let cfg = CampaignConfig {
            hosts: 40,
            workers,
            seed: 3,
            samples: 4,
            reuse: false,
            ..CampaignConfig::default()
        };
        let mut buf = Vec::new();
        run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
        buf
    };
    assert_eq!(run(1), run(6));
}

/// The simulator pool only recycles allocations: a campaign on pooled
/// (reset) simulators is byte-identical to fresh construction, across
/// worker counts and shard splits — `Simulator::reset`'s contract,
/// asserted end to end.
#[test]
fn pooled_and_fresh_construction_are_byte_identical() {
    let run = |pool: bool, workers: usize, shard: Option<(usize, usize)>| -> Vec<u8> {
        let cfg = CampaignConfig {
            hosts: 60,
            workers,
            seed: 12,
            samples: 4,
            pool,
            shard,
            ..CampaignConfig::default()
        };
        let mut buf = Vec::new();
        run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
        buf
    };
    let fresh = run(false, 1, None);
    // Pooled, serial: every host after a worker's first rides a reset
    // simulator.
    assert_eq!(run(true, 1, None), fresh, "pooled vs fresh (1 worker)");
    // Pooled, parallel: each worker recycles its own pool.
    assert_eq!(run(true, 4, None), fresh, "pooled vs fresh (4 workers)");
    // Pooled, sharded: concatenated pooled shards equal the fresh whole.
    let mut stitched = Vec::new();
    for k in 1..=3 {
        stitched.extend(run(true, 2, Some((k, 3))));
    }
    assert_eq!(stitched, fresh, "pooled shards vs fresh whole");
}

/// Per-version determinism, the campaign v2 contract: under either
/// `--sim-version`, the report is byte-identical across worker counts,
/// shard splits and simulator pooling. (The striping-heavy model makes
/// sure both cross-traffic models are actually exercised.)
#[test]
fn each_sim_version_is_deterministic_across_workers_shards_and_pool() {
    let run = |v: SimVersion, workers: usize, pool: bool, shard: Option<(usize, usize)>| {
        let cfg = CampaignConfig {
            hosts: 48,
            workers,
            seed: 14,
            samples: 4,
            pool,
            sim_version: v,
            shard,
            ..CampaignConfig::default()
        };
        let mut buf = Vec::new();
        let out = run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
        (buf, out.summary.render())
    };
    for version in [SimVersion::V1, SimVersion::V2] {
        let (whole, summary) = run(version, 1, true, None);
        // Workers must not change a byte.
        assert_eq!(
            run(version, 6, true, None),
            (whole.clone(), summary.clone()),
            "v{version}"
        );
        // Pooling must not change a byte.
        assert_eq!(run(version, 2, false, None).0, whole, "v{version} pool");
        // Concatenated shards must reproduce the whole report.
        let mut stitched = Vec::new();
        for k in 1..=3 {
            stitched.extend(run(version, 2, true, Some((k, 3))).0);
        }
        assert_eq!(stitched, whole, "v{version} shards");
    }
}

/// The model swap is a *declared* output break: same config, different
/// `--sim-version`, different bytes (only striping hosts' lines move —
/// the other mechanisms draw no cross traffic).
#[test]
fn sim_versions_differ_only_where_striping_draws() {
    let run = |v: SimVersion| {
        let cfg = CampaignConfig {
            hosts: 48,
            workers: 2,
            seed: 14,
            samples: 4,
            sim_version: v,
            ..CampaignConfig::default()
        };
        let mut buf = Vec::new();
        run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
        String::from_utf8(buf).expect("JSONL is UTF-8")
    };
    let v1 = run(SimVersion::V1);
    let v2 = run(SimVersion::V2);
    assert_ne!(v1, v2, "the versions must be distinguishable");
    let mut changed = 0;
    for (a, b) in v1.lines().zip(v2.lines()) {
        if a != b {
            changed += 1;
            assert!(
                a.contains("\"mechanism\":\"striping\""),
                "only striping hosts may move between versions: {a}"
            );
        }
    }
    assert!(changed > 0, "seed 14 must draw at least one striping host");
}

/// FNV-1a 64 over a byte stream — the pinned-golden fingerprint.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The pinned v1 smoke: campaign format v1 keeps historical reports
/// reproducible, so its bytes for a reference config are pinned by
/// hash, not merely compared run-to-run. Pinned at the v2 landing
/// (after the Poisson-underflow bugfix — the one declared v1 change:
/// capped replay windows ran Knuth's method past the `exp(-λ)`
/// underflow and drew counts biased ~17% low; see
/// `striping::poisson`). Re-bless deliberately, never casually: these
/// constants are what makes a v1 report from one build comparable to
/// another's.
#[test]
fn pinned_v1_smoke_reproduces_historical_bytes() {
    // Re-blessed at the hostile-host landing: every JSONL line gained
    // an `"outcome"` field (complete/degraded/failed classification)
    // and the summary footer a failures line plus failure-taxonomy
    // table — a declared output break. Measurement bytes (verdicts,
    // rates, samples) did not move; only the new fields landed.
    const PINNED_JSONL_FNV1A: u64 = 0xefe4_4878_dd8c_5ac2;
    const PINNED_SUMMARY_FNV1A: u64 = 0xe2cc_5706_f46d_21ae;
    let cfg = CampaignConfig {
        hosts: 40,
        workers: 2,
        seed: 1,
        sim_version: SimVersion::V1,
        ..CampaignConfig::default()
    };
    let mut buf = Vec::new();
    let out = run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
    assert_eq!(
        fnv1a64(&buf),
        PINNED_JSONL_FNV1A,
        "v1 JSONL bytes moved — campaign v1 is the frozen format; if this \
         is an intended declared break, re-bless the pinned hashes"
    );
    assert_eq!(
        fnv1a64(out.summary.render().as_bytes()),
        PINNED_SUMMARY_FNV1A,
        "v1 summary bytes moved — campaign v1 is the frozen format"
    );
}

/// The pinned v2 smoke: the same reference config under `--sim-version
/// 2` (stationary cross-traffic draws). Captured immediately before
/// the sharded-aggregation refactor, so it proves the funnel rework
/// did not move a byte of the current-format JSONL either.
#[test]
fn pinned_v2_smoke_reproduces_historical_bytes() {
    // Re-blessed at the hostile-host landing (new `"outcome"` JSONL
    // field), same declared break as the v1 pin above.
    const PINNED_JSONL_FNV1A: u64 = 0x5834_53a5_b0b1_1bf7;
    let cfg = CampaignConfig {
        hosts: 40,
        workers: 2,
        seed: 1,
        sim_version: SimVersion::V2,
        ..CampaignConfig::default()
    };
    let mut buf = Vec::new();
    run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
    assert_eq!(
        fnv1a64(&buf),
        PINNED_JSONL_FNV1A,
        "v2 JSONL bytes moved — if this is an intended declared break, \
         re-bless the pinned hash"
    );
}

/// The funnel-free path (no sink, `keep_reports: false` — per-worker
/// `ShardAggregator`s merged at the end, no id-order reorder buffer)
/// must render the same summary as the ordered path, for every worker
/// count and with pooling on or off. This is the tentpole guarantee:
/// summary state is a commutative monoid, so the nondeterministic
/// work-stealing partition cannot leak into the output.
#[test]
fn funnel_free_summary_matches_ordered_path_across_workers() {
    let run = |workers: usize, keep_reports: bool, pool: bool| -> String {
        let cfg = CampaignConfig {
            hosts: 48,
            workers,
            seed: 14,
            samples: 4,
            pool,
            keep_reports,
            ..CampaignConfig::default()
        };
        let out = if keep_reports {
            run_campaign(&cfg, Some(&mut Vec::new())).expect("in-memory sink")
        } else {
            run_campaign(&cfg, None::<&mut Vec<u8>>).expect("no sink")
        };
        assert_eq!(out.reports.len(), if keep_reports { 48 } else { 0 });
        assert_eq!(out.summary.hosts, 48);
        out.summary.render()
    };
    let ordered = run(1, true, true);
    for workers in [1, 2, 8] {
        for pool in [true, false] {
            assert_eq!(
                run(workers, false, pool),
                ordered,
                "funnel-free summary diverged (workers {workers}, pool {pool})"
            );
        }
    }
}

/// Shard campaigns merge: running K/N shards separately and folding
/// their summaries through `CampaignSummary::merge` reproduces the
/// unsharded summary — the associative-merge contract at the process
/// level (N machines can split a campaign and combine summaries).
#[test]
fn merged_shard_summaries_equal_the_unsharded_summary() {
    let run = |shard: Option<(usize, usize)>| {
        let cfg = CampaignConfig {
            hosts: 31,
            workers: 2,
            seed: 5,
            samples: 3,
            keep_reports: false,
            shard,
            ..CampaignConfig::default()
        };
        run_campaign(&cfg, None::<&mut Vec<u8>>)
            .expect("no sink")
            .summary
    };
    let whole = run(None);
    // Fold shards out of order — merge is commutative, not just
    // associative.
    let mut merged = run(Some((3, 4)));
    for k in [1, 4, 2] {
        merged.merge(&run(Some((k, 4))));
    }
    assert_eq!(merged.render(), whole.render());
    assert_eq!(merged.hosts, whole.hosts);
}

/// Telemetry observes, never participates: the pinned v1/v2 reference
/// bytes must not move under `Full` instrumentation — the strongest
/// form of the "`--metrics` changes no output byte" contract, checked
/// against the frozen-format hashes rather than a sibling run.
#[test]
fn full_telemetry_reproduces_the_pinned_bytes() {
    use reorder_survey::TelemetryMode;
    for (version, pinned) in [
        (SimVersion::V1, 0xefe4_4878_dd8c_5ac2_u64),
        (SimVersion::V2, 0x5834_53a5_b0b1_1bf7_u64),
    ] {
        let cfg = CampaignConfig {
            hosts: 40,
            workers: 2,
            seed: 1,
            sim_version: version,
            telemetry: TelemetryMode::Full,
            ..CampaignConfig::default()
        };
        let mut buf = Vec::new();
        let out = run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
        assert_eq!(
            fnv1a64(&buf),
            pinned,
            "{version:?}: telemetry must not change a byte of the report"
        );
        // And it did actually record: every host leaves a span.
        assert_eq!(
            out.telemetry.merged().span_stats("host").map(|s| s.count()),
            Some(40)
        );
    }
}

/// The reuse-off (per-phase scenario) protocol builds many scenarios
/// per host — the pool's busiest recycling pattern must be inert too.
#[test]
fn pooled_matches_fresh_under_reuse_off() {
    let run = |pool: bool| -> Vec<u8> {
        let cfg = CampaignConfig {
            hosts: 24,
            workers: 2,
            seed: 8,
            samples: 3,
            reuse: false,
            pool,
            ..CampaignConfig::default()
        };
        let mut buf = Vec::new();
        run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
        buf
    };
    assert_eq!(run(true), run(false));
}
