//! Chaos campaign acceptance: a seeded 1000-host campaign with a 20%
//! hostile mix (all five fault classes represented) must complete,
//! classify every hostile host in the failure taxonomy, reproduce
//! byte-identical output across reruns and worker counts, and stay
//! inside a bounded wall clock — no tarpit or blackhole host may burn
//! more than its per-host budget.

use reorder_core::scenario::FaultClass;
use reorder_survey::{run_campaign, CampaignConfig, PopulationModel};
use std::collections::BTreeSet;

const HOSTS: usize = 1000;
const SEED: u64 = 42;
const CHAOS_PPM: u32 = 200_000; // 20%

fn chaos_cfg(workers: usize) -> CampaignConfig {
    CampaignConfig {
        hosts: HOSTS,
        workers,
        seed: SEED,
        samples: 4,
        model: PopulationModel {
            chaos_ppm: CHAOS_PPM,
            ..Default::default()
        },
        ..CampaignConfig::default()
    }
}

/// The hostile ids and their fault classes, recomputed from the
/// population model (a pure function of `(model, id, seed)`).
fn hostile_hosts() -> Vec<(u64, FaultClass)> {
    let model = PopulationModel {
        chaos_ppm: CHAOS_PPM,
        ..Default::default()
    };
    (0..HOSTS as u64)
        .filter_map(|id| model.host(id, SEED).fault.map(|f| (id, f)))
        .collect()
}

/// Pull `"key":"value"` out of one JSONL line.
fn str_field<'a>(line: &'a str, key: &str) -> &'a str {
    let tag = format!("\"{key}\":\"");
    let at = line
        .find(&tag)
        .unwrap_or_else(|| panic!("no {key} in {line}"));
    let rest = &line[at + tag.len()..];
    &rest[..rest.find('"').expect("closing quote")]
}

#[test]
fn chaos_campaign_classifies_every_hostile_host_within_budget() {
    let hostile = hostile_hosts();
    let frac = hostile.len() as f64 / HOSTS as f64;
    assert!(
        (0.15..=0.25).contains(&frac),
        "20% mix drew {} hostile hosts",
        hostile.len()
    );
    let classes: BTreeSet<&'static str> = hostile.iter().map(|(_, f)| f.label()).collect();
    assert_eq!(
        classes.len(),
        5,
        "all five fault classes must be represented: {classes:?}"
    );

    let started = std::time::Instant::now();
    let mut jsonl = Vec::new();
    let out = run_campaign(&chaos_cfg(4), Some(&mut jsonl)).expect("chaos campaign completes");
    let wall = started.elapsed();
    // The wall-clock bound the budget buys: ~200 hostile hosts at 30s
    // tarpit delay would cost hours of simulated probing without the
    // per-host deadline; with it the whole campaign stays comfortably
    // inside interactive time even in debug builds.
    assert!(
        wall.as_secs() < 120,
        "chaos campaign must stay bounded, took {wall:?}"
    );

    let text = String::from_utf8(jsonl.clone()).expect("utf8 jsonl");
    assert_eq!(text.lines().count(), HOSTS);
    let outcomes: Vec<(u64, String)> = text
        .lines()
        .map(|l| {
            let id: u64 = {
                let rest = &l["{\"id\":".len()..];
                rest[..rest.find(',').unwrap()].parse().unwrap()
            };
            (id, str_field(l, "outcome").to_string())
        })
        .collect();
    for (id, fault) in &hostile {
        let (_, outcome) = &outcomes[*id as usize];
        assert_ne!(
            outcome,
            "complete",
            "hostile host {id} ({}) must be classified, not reported complete",
            fault.label()
        );
    }

    // The taxonomy accounts for exactly the non-complete hosts — which
    // include every hostile host (and any cooperative host that failed
    // a round on its own).
    let non_complete = outcomes.iter().filter(|(_, o)| o != "complete").count() as u64;
    let s = &out.summary;
    assert_eq!(s.failed + s.degraded, non_complete);
    assert!(s.failed + s.degraded >= hostile.len() as u64);
    let taxonomy_hosts: u64 = s.failure_taxonomy.values().map(|f| f.hosts).sum();
    assert_eq!(taxonomy_hosts, s.failed + s.degraded);
    let rendered = s.render();
    assert!(rendered.contains("failure taxonomy"), "{rendered}");

    // Byte-identical across a rerun and across worker counts.
    let mut again = Vec::new();
    let out1 = run_campaign(&chaos_cfg(1), Some(&mut again)).expect("1-worker rerun");
    assert_eq!(jsonl, again, "chaos JSONL must not depend on workers");
    assert_eq!(out1.summary.render(), rendered);
}

#[test]
fn tarpit_and_blackhole_hosts_cost_at_most_their_budget() {
    // A tarpit host's 30s-per-reply delay dwarfs the cooperative
    // hosts' round trips; the per-host deadline is what keeps its
    // simulated cost — and hence its event count — in the same
    // ballpark instead of orders of magnitude beyond. Events are the
    // honest proxy for simulated work: every timer and delivery the
    // host's pathological path would burn shows up there.
    let hostile = hostile_hosts();
    let cfg = chaos_cfg(2);
    let mut jsonl = Vec::new();
    let out = run_campaign(&cfg, Some(&mut jsonl)).expect("chaos campaign");
    let per_host_budget = cfg.budget.deadline;
    assert!(per_host_budget.as_secs() > 0);
    // Campaign-wide event total with ~200 hostile hosts stays within a
    // small multiple of the all-cooperative campaign's: the budget cut
    // the pathological tails. (An unbudgeted tarpit at 30s/reply
    // multiplies the event bill, not adds to it.)
    let clean = run_campaign(
        &CampaignConfig {
            model: PopulationModel::default(),
            ..cfg.clone()
        },
        None::<&mut Vec<u8>>,
    )
    .expect("clean campaign");
    assert!(
        out.events < clean.events * 3,
        "hostile population events ({}) must stay within 3x the clean campaign's ({}) — \
         a blowout means budgets stopped bounding tarpit/blackhole hosts",
        out.events,
        clean.events
    );
    assert!(!hostile.is_empty());
}
