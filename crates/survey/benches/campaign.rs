//! Campaign-throughput benches: hosts surveyed per second through the
//! full pipeline, and the population generator alone.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use reorder_survey::{run_campaign, CampaignConfig, PopulationModel, TechniqueChoice};

fn bench_campaign(c: &mut Criterion) {
    let hosts = 32usize;
    let mut g = c.benchmark_group("campaign");
    g.sample_size(10);
    g.throughput(Throughput::Elements(hosts as u64));

    for workers in [1usize, 2, 4] {
        g.bench_function(BenchmarkId::new("auto_32_hosts_workers", workers), |b| {
            b.iter(|| {
                let cfg = CampaignConfig {
                    hosts,
                    workers,
                    seed: 0xBE,
                    samples: 8,
                    technique: TechniqueChoice::Auto,
                    baseline: false,
                    ..CampaignConfig::default()
                };
                black_box(run_campaign(&cfg, None::<&mut Vec<u8>>).unwrap())
            })
        });
    }

    // The connection-reuse claim, measured: the same campaign with the
    // per-host session fast path on (one scenario, shared handshakes,
    // one IPID validation) vs. off (the PR 2 per-phase protocol). The
    // full pipeline — amenability + measurement + transfer baseline —
    // is where reuse pays; `reuse_on` should come in ~30% under
    // `reuse_off` per host.
    for (label, reuse) in [("reuse_on", true), ("reuse_off", false)] {
        g.bench_function(BenchmarkId::new("full_pipeline_32_hosts", label), |b| {
            b.iter(|| {
                let cfg = CampaignConfig {
                    hosts,
                    workers: 1,
                    seed: 0xBE,
                    samples: 8,
                    technique: TechniqueChoice::Auto,
                    baseline: true,
                    reuse,
                    ..CampaignConfig::default()
                };
                black_box(run_campaign(&cfg, None::<&mut Vec<u8>>).unwrap())
            })
        });
    }
    g.bench_function("amenability_only_32_hosts", |b| {
        b.iter(|| {
            let cfg = CampaignConfig {
                hosts,
                workers: 1,
                seed: 0xBE,
                amenability_only: true,
                ..CampaignConfig::default()
            };
            black_box(run_campaign(&cfg, None::<&mut Vec<u8>>).unwrap())
        })
    });
    // The simulator-pool ablation: identical output (asserted by the
    // determinism suite), the pool only recycles allocations.
    for (label, pool) in [("pool_on", true), ("pool_off", false)] {
        g.bench_function(BenchmarkId::new("full_pipeline_32_hosts", label), |b| {
            b.iter(|| {
                let cfg = CampaignConfig {
                    hosts,
                    workers: 1,
                    seed: 0xBE,
                    samples: 8,
                    technique: TechniqueChoice::Auto,
                    pool,
                    ..CampaignConfig::default()
                };
                black_box(run_campaign(&cfg, None::<&mut Vec<u8>>).unwrap())
            })
        });
    }
    g.finish();

    // The headline scale point the perf trajectory tracks (see
    // `exp_scale` / BENCH_campaign.json): the full default campaign —
    // auto protocol, 15 samples, transfer baseline — at 1000 hosts.
    let mut g = c.benchmark_group("scale");
    g.sample_size(10);
    g.throughput(Throughput::Elements(1000));
    g.bench_function("auto_1000_hosts_full", |b| {
        b.iter(|| {
            let cfg = CampaignConfig {
                hosts: 1000,
                workers: 1,
                seed: 1,
                ..CampaignConfig::default()
            };
            black_box(run_campaign(&cfg, None::<&mut Vec<u8>>).unwrap())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("population");
    let n = 10_000u64;
    g.throughput(Throughput::Elements(n));
    g.bench_function("generate_10k_specs", |b| {
        let model = PopulationModel::default();
        b.iter(|| {
            for i in 0..n {
                black_box(model.host(i, 7));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_campaign);
criterion_main!(benches);
