//! Layer 4a: sharded, mergeable streaming aggregation.
//!
//! An aggregator absorbs [`HostReport`]s one at a time and keeps only
//! O(1) state per breakdown key: merged `(reordered, total)` counts,
//! order-independent mean/CI via [`reorder_core::stats::Moments`], and
//! a mergeable quantile sketch ([`reorder_core::stats::QuantileSketch`])
//! over per-host rates. Nothing per-sample is ever retained.
//!
//! Since the sharded-aggregation refactor every piece of summary state
//! is a **commutative monoid**: integer counters, integer-state
//! sketches, and fixed-point `Moments`. Absorbing reports in any order
//! — or folding disjoint subsets into separate [`ShardAggregator`]s
//! and merging — produces bit-identical state. That law is what lets
//! summary-only campaigns skip the id-order reorder buffer entirely
//! (each worker folds the hosts it happened to run; the final merge is
//! associative), and it is the persistence primitive for
//! checkpoint/resume: a shard's summary can be serialized, reloaded
//! and merged losslessly.

use crate::pipeline::{HostOutcome, HostReport};
use reorder_core::jsonx;
use reorder_core::metrics::ReorderEstimate;
use reorder_core::stats::{Moments, QuantileSketch, SKETCH_RELATIVE_ERROR};
use reorder_core::techniques::IpidVerdict;
use reorder_core::telemetry::intern_label;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Serialize a pooled estimate as the two-element array the checkpoint
/// format uses: `[reordered,total]`.
fn est_json(e: &ReorderEstimate) -> String {
    format!("[{},{}]", e.reordered, e.total)
}

/// Parse an [`est_json`] pair, rejecting `reordered > total` (the
/// invariant [`ReorderEstimate::new`] asserts) instead of panicking on
/// corrupt input.
fn est_from_json(raw: &str) -> Result<ReorderEstimate, String> {
    let parts = jsonx::elements(raw)?;
    if parts.len() != 2 {
        return Err("estimate wants [reordered,total]".into());
    }
    let reordered: usize = parts[0]
        .parse()
        .map_err(|_| "non-integer reordered count")?;
    let total: usize = parts[1].parse().map_err(|_| "non-integer total count")?;
    if reordered > total {
        return Err(format!("estimate {reordered}/{total} exceeds its total"));
    }
    Ok(ReorderEstimate { reordered, total })
}

/// Upper bucket bounds of [`RateHistogram`] (a first bucket catches
/// exact zero). Chosen to resolve the Fig. 5 range: most hosts near
/// zero, a tail out to tens of percent.
pub const RATE_BUCKETS: [f64; 8] = [0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0];

/// Fixed-bucket histogram over per-host reordering rates — the
/// streaming stand-in for the Fig. 5 CDF.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RateHistogram {
    zero: u64,
    counts: [u64; RATE_BUCKETS.len()],
    /// NaN inputs, quarantined: every `NaN <= bound` comparison is
    /// false, so without this counter a NaN rate would fall through
    /// the bucket scan into the top (25%, 100%] bucket and silently
    /// fatten the heavy-reordering tail.
    nan: u64,
}

impl RateHistogram {
    /// Fold in one host's rate. A NaN rate (no upstream caller
    /// produces one today — pushes are gated on `total > 0`) is
    /// counted in [`RateHistogram::nans`] rather than mis-bucketed.
    pub fn push(&mut self, rate: f64) {
        if rate.is_nan() {
            self.nan += 1;
            return;
        }
        if rate <= 0.0 {
            self.zero += 1;
            return;
        }
        for (i, &ub) in RATE_BUCKETS.iter().enumerate() {
            if rate <= ub {
                self.counts[i] += 1;
                return;
            }
        }
        self.counts[RATE_BUCKETS.len() - 1] += 1;
    }

    /// Total observations, including quarantined NaN inputs.
    pub fn total(&self) -> u64 {
        self.zero + self.nan + self.counts.iter().sum::<u64>()
    }

    /// Hosts with exactly zero measured reordering.
    pub fn zeros(&self) -> u64 {
        self.zero
    }

    /// NaN rates rejected by [`RateHistogram::push`] — never part of
    /// the bucket rows.
    pub fn nans(&self) -> u64 {
        self.nan
    }

    /// `(label, count)` rows, zero bucket first.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut rows = vec![("0".to_string(), self.zero)];
        let mut lo = 0.0;
        for (i, &ub) in RATE_BUCKETS.iter().enumerate() {
            rows.push((
                format!("({:.1}%, {:.1}%]", lo * 100.0, ub * 100.0),
                self.counts[i],
            ));
            lo = ub;
        }
        rows
    }

    /// The compatibility view: derive the fixed-bucket histogram from a
    /// [`QuantileSketch`]. Each sketch bucket's count lands in the rate
    /// bucket containing its representative value, so a derived count
    /// can differ from a directly-pushed one only for observations
    /// within the sketch's ε of a bucket edge. The summary renders this
    /// view; the sketch is the source of truth that survives shard
    /// merges (fixed buckets cannot).
    pub fn from_sketch(sketch: &QuantileSketch) -> RateHistogram {
        // Negative rates cannot occur upstream, but [`RateHistogram::push`]
        // files `rate <= 0` under the zero bucket — the view keeps that
        // convention for any negative sketch mass.
        let neg = sketch.count()
            - sketch.zeros()
            - sketch.positive_buckets().map(|(_, c)| c).sum::<u64>();
        let mut h = RateHistogram {
            zero: sketch.zeros() + neg,
            counts: [0; RATE_BUCKETS.len()],
            nan: sketch.nans(),
        };
        'bucket: for (rep, count) in sketch.positive_buckets() {
            for (i, &ub) in RATE_BUCKETS.iter().enumerate() {
                if rep <= ub {
                    h.counts[i] += count;
                    continue 'bucket;
                }
            }
            h.counts[RATE_BUCKETS.len() - 1] += count;
        }
        h
    }
}

/// Per-breakdown-key accumulator. Every field is order-independent
/// (integer counts or fixed-point [`Moments`]), so group rows merge
/// exactly across shards.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupAgg {
    /// Hosts in the group.
    pub hosts: u64,
    /// Pooled forward estimate (sums of counts — order-independent).
    pub fwd: ReorderEstimate,
    /// Pooled reverse estimate.
    pub rev: ReorderEstimate,
    /// Order-independent stats over per-host forward rates.
    pub fwd_rates: Moments,
}

impl GroupAgg {
    fn absorb(&mut self, r: &HostReport) {
        self.hosts += 1;
        self.fwd = self.fwd.merge(&r.fwd);
        self.rev = self.rev.merge(&r.rev);
        if r.fwd.total > 0 {
            self.fwd_rates.push(r.fwd.rate());
        }
    }

    fn merge(&mut self, other: &GroupAgg) {
        self.hosts += other.hosts;
        self.fwd = self.fwd.merge(&other.fwd);
        self.rev = self.rev.merge(&other.rev);
        self.fwd_rates = self.fwd_rates.merge(&other.fwd_rates);
    }

    /// Serialize the exact group state (integer counts and fixed-point
    /// moments) for the campaign checkpoint format.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"hosts\":{},\"fwd\":{},\"rev\":{},\"fwd_rates\":{}}}",
            self.hosts,
            est_json(&self.fwd),
            est_json(&self.rev),
            self.fwd_rates.to_json()
        )
    }

    /// Parse a [`GroupAgg::to_json`] document back bit-exactly.
    pub fn from_json(text: &str) -> Result<GroupAgg, String> {
        Ok(GroupAgg {
            hosts: jsonx::int_field(text, "hosts")?,
            fwd: est_from_json(jsonx::field(text, "fwd")?)?,
            rev: est_from_json(jsonx::field(text, "rev")?)?,
            fwd_rates: Moments::from_json(jsonx::field(text, "fwd_rates")?)?,
        })
    }
}

/// Per-failure-class accumulator: how many hosts landed in one
/// [`HostErrorKind`] bucket, split by terminal severity and broken
/// down by path mechanism and OS personality. Integer counters only,
/// so shards merge exactly.
///
/// [`HostErrorKind`]: reorder_core::HostErrorKind
#[derive(Debug, Clone, Default)]
pub struct FailureAgg {
    /// Hosts classified under this failure kind (failed + degraded).
    pub hosts: u64,
    /// Hosts that produced no usable measurement at all.
    pub failed: u64,
    /// Hosts that completed with partial results.
    pub degraded: u64,
    /// Mechanism label → hosts of this failure kind on that mechanism.
    pub by_mechanism: BTreeMap<&'static str, u64>,
    /// Personality name → hosts of this failure kind with that stack.
    pub by_personality: BTreeMap<&'static str, u64>,
}

impl FailureAgg {
    fn absorb(&mut self, r: &HostReport, failed: bool) {
        self.hosts += 1;
        if failed {
            self.failed += 1;
        } else {
            self.degraded += 1;
        }
        *self
            .by_mechanism
            .entry(r.spec.mechanism.label())
            .or_default() += 1;
        *self
            .by_personality
            .entry(r.spec.personality.name)
            .or_default() += 1;
    }

    fn merge(&mut self, other: &FailureAgg) {
        self.hosts += other.hosts;
        self.failed += other.failed;
        self.degraded += other.degraded;
        for (&key, &n) in &other.by_mechanism {
            *self.by_mechanism.entry(key).or_default() += n;
        }
        for (&key, &n) in &other.by_personality {
            *self.by_personality.entry(key).or_default() += n;
        }
    }

    /// Serialize the exact state for the campaign checkpoint format.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"hosts\":{},\"failed\":{},\"degraded\":{}",
            self.hosts, self.failed, self.degraded
        );
        for (name, map) in [
            ("by_mechanism", &self.by_mechanism),
            ("by_personality", &self.by_personality),
        ] {
            let _ = write!(s, ",\"{name}\":{{");
            for (i, (key, n)) in map.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{key}\":{n}");
            }
            s.push('}');
        }
        s.push('}');
        s
    }

    /// Parse a [`FailureAgg::to_json`] document back bit-exactly.
    pub fn from_json(text: &str) -> Result<FailureAgg, String> {
        let mut agg = FailureAgg {
            hosts: jsonx::int_field(text, "hosts")?,
            failed: jsonx::int_field(text, "failed")?,
            degraded: jsonx::int_field(text, "degraded")?,
            ..FailureAgg::default()
        };
        for (name, map) in [
            ("by_mechanism", &mut agg.by_mechanism),
            ("by_personality", &mut agg.by_personality),
        ] {
            for elem in jsonx::elements(jsonx::field(text, name)?)? {
                let (key, val) = jsonx::member(elem)?;
                let n: u64 = val.trim().parse().map_err(|_| "non-integer host count")?;
                map.insert(intern_label(key), n);
            }
        }
        if agg.failed + agg.degraded != agg.hosts {
            return Err(format!(
                "failure class counts {}+{} disagree with hosts {}",
                agg.failed, agg.degraded, agg.hosts
            ));
        }
        Ok(agg)
    }
}

/// Campaign-wide streaming summary.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Hosts surveyed.
    pub hosts: u64,
    /// Hosts with at least one successful measurement round (or, in
    /// amenability-only mode, a verdict).
    pub reachable: u64,
    /// Amenability tallies: amenable / constant-zero / non-monotonic /
    /// probe-failed.
    pub amenable: u64,
    /// Constant-zero IPID verdicts (paper: "likely Linux 2.4").
    pub constant_zero: u64,
    /// Non-monotonic IPID verdicts (paper: "likely load balancers").
    pub non_monotonic: u64,
    /// Amenability probes that failed outright.
    pub probe_failed: u64,
    /// Hosts whose measured fwd or rev rate was nonzero.
    pub reordering_hosts: u64,
    /// Order-independent stats over per-host forward rates.
    pub fwd_rates: Moments,
    /// Order-independent stats over per-host reverse rates.
    pub rev_rates: Moments,
    /// Pooled forward estimate over all samples of all hosts.
    pub fwd_pooled: ReorderEstimate,
    /// Pooled reverse estimate.
    pub rev_pooled: ReorderEstimate,
    /// Pooled reverse estimate of the transfer baseline.
    pub baseline_pooled: ReorderEstimate,
    /// Mergeable quantile sketch over per-host forward rates — the
    /// source of truth for the Fig. 5 CDF points and the rendered rate
    /// histogram (derived via [`RateHistogram::from_sketch`]).
    pub fwd_sketch: QuantileSketch,
    /// Breakdown by measuring technique.
    pub by_technique: BTreeMap<&'static str, GroupAgg>,
    /// Breakdown by OS personality.
    pub by_personality: BTreeMap<&'static str, GroupAgg>,
    /// Breakdown by path mechanism.
    pub by_mechanism: BTreeMap<&'static str, GroupAgg>,
    /// Campaign gap profile: gap µs → pooled forward estimate.
    pub gap_profile: BTreeMap<u64, ReorderEstimate>,
    /// Hosts whose outcome was `Failed` — no usable measurement.
    pub failed: u64,
    /// Hosts whose outcome was `Degraded` — partial results kept.
    pub degraded: u64,
    /// Total failed measurement rounds across all hosts (each host's
    /// JSONL `failures` counter, summed).
    pub failure_rounds: u64,
    /// Failure taxonomy: [`HostErrorKind`] label → per-class breakdown.
    /// Only failed/degraded hosts appear; a clean campaign's taxonomy
    /// is empty.
    ///
    /// [`HostErrorKind`]: reorder_core::HostErrorKind
    pub failure_taxonomy: BTreeMap<&'static str, FailureAgg>,
}

impl CampaignSummary {
    /// Fold in one host's report. Absorption is order-independent
    /// (every field is a commutative monoid), so workers may fold
    /// reports in completion order and still render a byte-identical
    /// summary — [`ShardAggregator`] and the determinism suite build
    /// on exactly this law.
    pub fn absorb(&mut self, r: &HostReport) {
        self.hosts += 1;
        if r.reachable {
            self.reachable += 1;
        }
        match r.verdict {
            Some(IpidVerdict::Amenable) => self.amenable += 1,
            Some(IpidVerdict::ConstantZero) => self.constant_zero += 1,
            Some(IpidVerdict::NonMonotonic) => self.non_monotonic += 1,
            None => self.probe_failed += 1,
        }
        if r.fwd.reordered > 0 || r.rev.reordered > 0 {
            self.reordering_hosts += 1;
        }
        if r.fwd.total > 0 {
            self.fwd_rates.push(r.fwd.rate());
            self.fwd_sketch.push(r.fwd.rate());
        }
        if r.rev.total > 0 {
            self.rev_rates.push(r.rev.rate());
        }
        self.fwd_pooled = self.fwd_pooled.merge(&r.fwd);
        self.rev_pooled = self.rev_pooled.merge(&r.rev);
        if let Some(b) = r.baseline_rev {
            self.baseline_pooled = self.baseline_pooled.merge(&b);
        }
        self.by_technique.entry(r.technique).or_default().absorb(r);
        self.by_personality
            .entry(r.spec.personality.name)
            .or_default()
            .absorb(r);
        self.by_mechanism
            .entry(r.spec.mechanism.label())
            .or_default()
            .absorb(r);
        for &(gap, est) in &r.gap_points {
            let e = self.gap_profile.entry(gap).or_default();
            *e = e.merge(&est);
        }
        self.failure_rounds += r.failures as u64;
        let failed = matches!(r.outcome, HostOutcome::Failed { .. });
        if failed {
            self.failed += 1;
        } else if matches!(r.outcome, HostOutcome::Degraded { .. }) {
            self.degraded += 1;
        }
        if let Some(class) = r.outcome.taxonomy() {
            self.failure_taxonomy
                .entry(class)
                .or_default()
                .absorb(r, failed);
        }
    }

    /// Fold another summary into this one — the associative merge that
    /// combines per-worker [`ShardAggregator`]s (and, cross-process,
    /// per-shard checkpoints) into the campaign total. Merging shard
    /// summaries is bit-identical to absorbing every report into one
    /// summary, in any order; the determinism suite asserts this end
    /// to end.
    pub fn merge(&mut self, other: &CampaignSummary) {
        self.hosts += other.hosts;
        self.reachable += other.reachable;
        self.amenable += other.amenable;
        self.constant_zero += other.constant_zero;
        self.non_monotonic += other.non_monotonic;
        self.probe_failed += other.probe_failed;
        self.reordering_hosts += other.reordering_hosts;
        self.fwd_rates = self.fwd_rates.merge(&other.fwd_rates);
        self.rev_rates = self.rev_rates.merge(&other.rev_rates);
        self.fwd_pooled = self.fwd_pooled.merge(&other.fwd_pooled);
        self.rev_pooled = self.rev_pooled.merge(&other.rev_pooled);
        self.baseline_pooled = self.baseline_pooled.merge(&other.baseline_pooled);
        self.fwd_sketch.merge(&other.fwd_sketch);
        for (&key, g) in &other.by_technique {
            self.by_technique.entry(key).or_default().merge(g);
        }
        for (&key, g) in &other.by_personality {
            self.by_personality.entry(key).or_default().merge(g);
        }
        for (&key, g) in &other.by_mechanism {
            self.by_mechanism.entry(key).or_default().merge(g);
        }
        for (&gap, est) in &other.gap_profile {
            let e = self.gap_profile.entry(gap).or_default();
            *e = e.merge(est);
        }
        self.failed += other.failed;
        self.degraded += other.degraded;
        self.failure_rounds += other.failure_rounds;
        for (&key, f) in &other.failure_taxonomy {
            self.failure_taxonomy.entry(key).or_default().merge(f);
        }
    }

    /// Serialize the exact summary state as one JSON object — every
    /// field an integer, fixed-point moments document, sketch document
    /// or map thereof, so [`CampaignSummary::from_json`] restores state
    /// that merges and renders bit-identically to the original. This is
    /// the `reorder.checkpoint/1` payload; the human table stays in
    /// [`CampaignSummary::render`].
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        let _ = write!(
            s,
            "{{\"hosts\":{},\"reachable\":{},\"amenable\":{},\"constant_zero\":{},\
             \"non_monotonic\":{},\"probe_failed\":{},\"reordering_hosts\":{},\
             \"fwd_rates\":{},\"rev_rates\":{},\"fwd_pooled\":{},\"rev_pooled\":{},\
             \"baseline_pooled\":{},\"fwd_sketch\":{}",
            self.hosts,
            self.reachable,
            self.amenable,
            self.constant_zero,
            self.non_monotonic,
            self.probe_failed,
            self.reordering_hosts,
            self.fwd_rates.to_json(),
            self.rev_rates.to_json(),
            est_json(&self.fwd_pooled),
            est_json(&self.rev_pooled),
            est_json(&self.baseline_pooled),
            self.fwd_sketch.to_json(),
        );
        for (name, map) in [
            ("by_technique", &self.by_technique),
            ("by_personality", &self.by_personality),
            ("by_mechanism", &self.by_mechanism),
        ] {
            let _ = write!(s, ",\"{name}\":{{");
            for (i, (key, g)) in map.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "\"{key}\":{}", g.to_json());
            }
            s.push('}');
        }
        let _ = write!(
            s,
            ",\"failed\":{},\"degraded\":{},\"failure_rounds\":{},\"failure_taxonomy\":{{",
            self.failed, self.degraded, self.failure_rounds
        );
        for (i, (key, f)) in self.failure_taxonomy.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\"{key}\":{}", f.to_json());
        }
        s.push('}');
        s.push_str(",\"gap_profile\":[");
        for (i, (gap, est)) in self.gap_profile.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{gap},{},{}]", est.reordered, est.total);
        }
        s.push_str("]}");
        s
    }

    /// Parse a [`CampaignSummary::to_json`] document back into the
    /// exact state. Malformed documents are rejected field-by-field;
    /// nothing is defaulted.
    pub fn from_json(text: &str) -> Result<CampaignSummary, String> {
        let mut sum = CampaignSummary {
            hosts: jsonx::int_field(text, "hosts")?,
            reachable: jsonx::int_field(text, "reachable")?,
            amenable: jsonx::int_field(text, "amenable")?,
            constant_zero: jsonx::int_field(text, "constant_zero")?,
            non_monotonic: jsonx::int_field(text, "non_monotonic")?,
            probe_failed: jsonx::int_field(text, "probe_failed")?,
            reordering_hosts: jsonx::int_field(text, "reordering_hosts")?,
            fwd_rates: Moments::from_json(jsonx::field(text, "fwd_rates")?)?,
            rev_rates: Moments::from_json(jsonx::field(text, "rev_rates")?)?,
            fwd_pooled: est_from_json(jsonx::field(text, "fwd_pooled")?)?,
            rev_pooled: est_from_json(jsonx::field(text, "rev_pooled")?)?,
            baseline_pooled: est_from_json(jsonx::field(text, "baseline_pooled")?)?,
            fwd_sketch: QuantileSketch::from_json(jsonx::field(text, "fwd_sketch")?)?,
            failed: jsonx::int_field(text, "failed")?,
            degraded: jsonx::int_field(text, "degraded")?,
            failure_rounds: jsonx::int_field(text, "failure_rounds")?,
            ..CampaignSummary::default()
        };
        for elem in jsonx::elements(jsonx::field(text, "failure_taxonomy")?)? {
            let (key, val) = jsonx::member(elem)?;
            sum.failure_taxonomy
                .insert(intern_label(key), FailureAgg::from_json(val)?);
        }
        for (name, map) in [
            ("by_technique", &mut sum.by_technique),
            ("by_personality", &mut sum.by_personality),
            ("by_mechanism", &mut sum.by_mechanism),
        ] {
            for elem in jsonx::elements(jsonx::field(text, name)?)? {
                let (key, val) = jsonx::member(elem)?;
                map.insert(intern_label(key), GroupAgg::from_json(val)?);
            }
        }
        for elem in jsonx::elements(jsonx::field(text, "gap_profile")?)? {
            let parts = jsonx::elements(elem)?;
            if parts.len() != 3 {
                return Err("gap_profile row wants [gap,reordered,total]".into());
            }
            let gap: u64 = parts[0].parse().map_err(|_| "non-integer gap")?;
            let est = est_from_json(&format!("[{},{}]", parts[1], parts[2]))?;
            sum.gap_profile.insert(gap, est);
        }
        Ok(sum)
    }

    /// Render the summary table (deterministic: every map is a
    /// `BTreeMap`, every float printed with fixed precision).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let rule = "-".repeat(66);
        let _ = writeln!(s, "campaign summary: {} hosts", self.hosts);
        let _ = writeln!(s, "{rule}");
        let _ = writeln!(
            s,
            "reachable: {}   unreachable: {}   reordering observed: {}",
            self.reachable,
            self.hosts - self.reachable,
            self.reordering_hosts
        );
        let _ = writeln!(
            s,
            "ipid verdicts: amenable {}  constant-zero {}  non-monotonic {}  failed {}",
            self.amenable, self.constant_zero, self.non_monotonic, self.probe_failed
        );
        if self.fwd_rates.count() > 0 {
            let (lo, hi) = self.fwd_rates.ci(0.95);
            let _ = writeln!(
                s,
                "fwd rate/host: mean {:.4}% (95% CI [{:.4}%, {:.4}%], n={})   pooled {:.4}% ({}/{})",
                self.fwd_rates.mean() * 100.0,
                lo.max(0.0) * 100.0,
                hi * 100.0,
                self.fwd_rates.count(),
                self.fwd_pooled.rate() * 100.0,
                self.fwd_pooled.reordered,
                self.fwd_pooled.total,
            );
        }
        if self.rev_rates.count() > 0 {
            let _ = writeln!(
                s,
                "rev rate/host: mean {:.4}%   pooled {:.4}% ({}/{})   transfer baseline {:.4}% ({}/{})",
                self.rev_rates.mean() * 100.0,
                self.rev_pooled.rate() * 100.0,
                self.rev_pooled.reordered,
                self.rev_pooled.total,
                self.baseline_pooled.rate() * 100.0,
                self.baseline_pooled.reordered,
                self.baseline_pooled.total,
            );
        }
        if self.fwd_sketch.count() > 0 {
            // Fig. 5 CDF points, read from the sketch: exact to its
            // documented relative error instead of bucket-floor
            // granularity.
            let _ = writeln!(s, "{rule}");
            let mut line = format!(
                "fwd rate/host quantiles (sketch, rel err <= {:.2}%):",
                SKETCH_RELATIVE_ERROR * 100.0
            );
            for (label, q) in [
                ("p25", 0.25),
                ("p50", 0.50),
                ("p75", 0.75),
                ("p90", 0.90),
                ("p99", 0.99),
            ] {
                let v = self.fwd_sketch.quantile(q).unwrap_or(0.0);
                let _ = write!(line, "  {label} {:.4}%", v * 100.0);
            }
            let _ = writeln!(s, "{line}");
            let hist = RateHistogram::from_sketch(&self.fwd_sketch);
            let _ = writeln!(s, "fwd rate histogram (hosts)");
            let max = hist
                .rows()
                .iter()
                .map(|&(_, c)| c)
                .max()
                .unwrap_or(1)
                .max(1);
            for (label, count) in hist.rows() {
                let bar = "#".repeat((count * 40 / max) as usize);
                let _ = writeln!(s, "{label:>16} {count:>7}  {bar}");
            }
        }
        for (title, map) in [
            ("technique", &self.by_technique),
            ("personality", &self.by_personality),
            ("mechanism", &self.by_mechanism),
        ] {
            let _ = writeln!(s, "{rule}");
            let _ = writeln!(
                s,
                "{:<14} {:>7} {:>12} {:>12} {:>12}",
                format!("by {title}"),
                "hosts",
                "fwd pooled",
                "fwd mean",
                "rev pooled"
            );
            for (key, g) in map.iter() {
                let _ = writeln!(
                    s,
                    "{key:<14} {:>7} {:>11.4}% {:>11.4}% {:>11.4}%",
                    g.hosts,
                    g.fwd.rate() * 100.0,
                    g.fwd_rates.mean() * 100.0,
                    g.rev.rate() * 100.0,
                );
            }
        }
        if !self.gap_profile.is_empty() {
            let _ = writeln!(s, "{rule}");
            let _ = writeln!(s, "{:>8} {:>12} {:>12}", "gap(us)", "fwd pooled", "samples");
            for (gap, est) in &self.gap_profile {
                let _ = writeln!(
                    s,
                    "{gap:>8} {:>11.4}% {:>12}",
                    est.rate() * 100.0,
                    est.total
                );
            }
        }
        if !self.failure_taxonomy.is_empty() {
            let _ = writeln!(s, "{rule}");
            let _ = writeln!(
                s,
                "{:<22} {:>7} {:>7} {:>8}",
                "failure taxonomy", "hosts", "failed", "degraded"
            );
            for (class, f) in &self.failure_taxonomy {
                let _ = writeln!(
                    s,
                    "{class:<22} {:>7} {:>7} {:>8}",
                    f.hosts, f.failed, f.degraded
                );
                for (title, map) in [
                    ("mechanisms", &f.by_mechanism),
                    ("personalities", &f.by_personality),
                ] {
                    let mut line = format!("  {title}:");
                    for (key, n) in map.iter() {
                        let _ = write!(line, " {key} {n}");
                    }
                    let _ = writeln!(s, "{line}");
                }
            }
        }
        let _ = writeln!(s, "{rule}");
        let _ = writeln!(
            s,
            "host outcomes: complete {}  degraded {}  failed {}   failed rounds: {}",
            self.hosts - self.degraded - self.failed,
            self.degraded,
            self.failed,
            self.failure_rounds
        );
        s
    }
}

/// One worker's (or one process-shard's) aggregation state: a summary
/// plus the per-host perf counters that used to ride the id-order
/// funnel. Workers fold whichever hosts the work-stealing scheduler
/// hands them; because every summary field merges exactly (see
/// [`CampaignSummary::merge`]), the final fold over shard aggregators
/// is independent of the nondeterministic host-to-worker assignment.
#[derive(Debug, Clone, Default)]
pub struct ShardAggregator {
    /// The shard's streaming summary.
    pub summary: CampaignSummary,
    /// Simulator events dispatched by this shard's hosts.
    pub events: u64,
}

impl ShardAggregator {
    /// Fold in one host's report.
    pub fn absorb(&mut self, r: &HostReport) {
        self.events += r.events;
        self.summary.absorb(r);
    }

    /// Fold another shard's state into this one (associative).
    pub fn merge(&mut self, other: &ShardAggregator) {
        self.events += other.events;
        self.summary.merge(&other.summary);
    }

    /// Serialize the exact shard state — the unit the campaign
    /// orchestrator checkpoints at every shard boundary. `events` is
    /// emitted first so the summary's own keys can never shadow it.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"events\":{},\"summary\":{}}}",
            self.events,
            self.summary.to_json()
        )
    }

    /// Parse a [`ShardAggregator::to_json`] document back bit-exactly:
    /// restored state merges and renders identically to the original
    /// (asserted by the checkpoint property suite).
    pub fn from_json(text: &str) -> Result<ShardAggregator, String> {
        Ok(ShardAggregator {
            events: jsonx::int_field(text, "events")?,
            summary: CampaignSummary::from_json(jsonx::field(text, "summary")?)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{survey_host, HostJob};
    use reorder_core::scenario::HostSpec;
    use reorder_tcpstack::HostPersonality;

    #[test]
    fn histogram_rejects_nan_instead_of_top_bucketing() {
        // Regression: `NaN <= 0.0` and every `NaN <= bound` are false,
        // so a NaN rate used to fall through the scan into the top
        // (25%, 100%] bucket — a phantom heavy-reordering host.
        let mut h = RateHistogram::default();
        h.push(f64::NAN);
        assert_eq!(h.nans(), 1);
        assert_eq!(h.zeros(), 0);
        assert_eq!(h.total(), 1);
        assert!(
            h.rows().iter().all(|&(_, c)| c == 0),
            "NaN must not land in any bucket row: {:?}",
            h.rows()
        );
        // Real rates keep bucketing as before around the quarantine.
        h.push(0.5);
        assert_eq!(h.rows().last().unwrap().1, 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = RateHistogram::default();
        for r in [0.0, 0.0005, 0.004, 0.02, 0.3, 0.9, 0.0] {
            h.push(r);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.zeros(), 2);
        assert_eq!(h.nans(), 0);
        let rows = h.rows();
        assert_eq!(rows.len(), 1 + RATE_BUCKETS.len());
        assert_eq!(rows[0].1, 2); // zero bucket
        assert_eq!(rows[1].1, 1); // (0, 0.1%]
        assert_eq!(rows[2].1, 1); // (0.1%, 0.5%]
        assert_eq!(rows[4].1, 1); // (1%, 2.5%]
        assert_eq!(rows.last().unwrap().1, 2); // (25%, 100%]
        assert_eq!(rows.iter().map(|&(_, c)| c).sum::<u64>(), 7);
    }

    #[test]
    fn histogram_from_sketch_matches_direct_pushes() {
        // Away from bucket edges the derived view is exact; the rates
        // below sit mid-bucket, far beyond the sketch's 0.39% ε.
        let rates = [0.0, 0.0005, 0.004, 0.02, 0.3, 0.9, 0.0, f64::NAN, 0.07];
        let mut direct = RateHistogram::default();
        let mut sketch = QuantileSketch::new();
        for &r in &rates {
            direct.push(r);
            sketch.push(r);
        }
        let derived = RateHistogram::from_sketch(&sketch);
        assert_eq!(derived, direct);
        assert_eq!(derived.nans(), 1);
    }

    fn reports(n: usize, seed: u64) -> Vec<HostReport> {
        let job = HostJob {
            samples: 4,
            gaps_us: vec![0, 50],
            ..HostJob::default()
        };
        let personalities = [
            HostPersonality::freebsd4(),
            HostPersonality::openbsd3(),
            HostPersonality::linux24(),
        ];
        (0..n)
            .map(|i| {
                let spec = HostSpec {
                    fwd_reorder: 0.05 + 0.03 * (i % 4) as f64,
                    ..HostSpec::clean("agg", personalities[i % 3].clone())
                };
                survey_host(i as u64, &spec, seed + i as u64, &job)
            })
            .collect()
    }

    /// The sharded-merge law end to end: any partition of reports into
    /// shard aggregators, merged in any order, renders the same bytes
    /// as one summary absorbing everything in id order.
    #[test]
    fn shard_merge_renders_identically_to_single_absorb() {
        let rs = reports(18, 900);
        let mut whole = CampaignSummary::default();
        for r in &rs {
            whole.absorb(r);
        }
        for shards in [2usize, 3, 5] {
            let mut parts = vec![ShardAggregator::default(); shards];
            // Deal round-robin AND absorb within each shard in reverse,
            // so neither the partition nor the intra-shard order is the
            // id order.
            for (i, r) in rs.iter().enumerate().rev() {
                parts[i % shards].absorb(r);
            }
            let mut merged = ShardAggregator::default();
            for p in parts.iter().rev() {
                merged.merge(p);
            }
            assert_eq!(merged.summary.hosts, whole.hosts);
            assert_eq!(
                merged.summary.render(),
                whole.render(),
                "{shards} shards must render identically"
            );
            assert_eq!(
                merged.events,
                rs.iter().map(|r| r.events).sum::<u64>(),
                "events must merge"
            );
        }
    }

    /// The checkpoint round-trip law at the unit level: a serialized
    /// shard restores to state whose merge and render are bit-equal.
    #[test]
    fn shard_json_round_trips_exactly() {
        let rs = reports(16, 4242);
        let mut shard = ShardAggregator::default();
        for r in &rs {
            shard.absorb(r);
        }
        let restored =
            ShardAggregator::from_json(&shard.to_json()).expect("shard JSON must parse back");
        assert_eq!(restored.events, shard.events);
        assert_eq!(restored.to_json(), shard.to_json());
        assert_eq!(restored.summary.render(), shard.summary.render());
        // Merging a restored half equals merging the original half.
        let mut via_restored = ShardAggregator::default();
        via_restored.merge(&restored);
        via_restored.merge(&shard);
        let mut via_original = ShardAggregator::default();
        via_original.merge(&shard);
        via_original.merge(&shard);
        assert_eq!(via_restored.to_json(), via_original.to_json());
    }

    #[test]
    fn shard_json_rejects_corruption() {
        let mut shard = ShardAggregator::default();
        for r in reports(6, 77) {
            shard.absorb(&r);
        }
        let good = shard.to_json();
        assert!(ShardAggregator::from_json("{}").is_err());
        assert!(ShardAggregator::from_json(&good.replace("\"events\"", "\"evnts\"")).is_err());
        // An estimate whose reordered count exceeds its total must be
        // rejected, not silently merged (ReorderEstimate's invariant).
        let bad = "{\"events\":0,\"summary\":".to_string()
            + &CampaignSummary::default()
                .to_json()
                .replace("\"fwd_pooled\":[0,0]", "\"fwd_pooled\":[5,2]")
            + "}";
        assert!(ShardAggregator::from_json(&bad).is_err());
    }

    #[test]
    fn render_reads_quantiles_from_the_sketch() {
        let rs = reports(12, 41);
        let mut sum = CampaignSummary::default();
        for r in &rs {
            sum.absorb(r);
        }
        let rendered = sum.render();
        assert!(
            rendered.contains("fwd rate/host quantiles (sketch"),
            "{rendered}"
        );
        assert!(rendered.contains("p50"));
        assert!(rendered.contains("p99"));
    }

    /// Hostile reports land in the failure taxonomy with their
    /// mechanism/personality breakdowns, survive the checkpoint JSON
    /// round trip bit-exactly, and render both the per-class table and
    /// the always-on outcome footer.
    #[test]
    fn failure_taxonomy_absorbs_round_trips_and_renders() {
        use crate::pipeline::HostOutcome;
        use reorder_core::scenario::FaultClass;
        use reorder_core::HostErrorKind;
        let job = HostJob {
            samples: 5,
            ..HostJob::default()
        };
        let mut sum = CampaignSummary::default();
        // One cooperative host, one blackholed, one dead-mid-measurement.
        let clean = HostSpec::clean("coop", HostPersonality::freebsd4());
        sum.absorb(&survey_host(0, &clean, 31, &job));
        let dark = HostSpec {
            fault: Some(FaultClass::Blackhole),
            ..HostSpec::clean("dark", HostPersonality::freebsd4())
        };
        let blackholed = survey_host(1, &dark, 32, &job);
        assert!(matches!(blackholed.outcome, HostOutcome::Failed { .. }));
        sum.absorb(&blackholed);
        let dying = HostSpec {
            fault: Some(FaultClass::DeadAfter { packets: 50 }),
            ..HostSpec::clean("dying", HostPersonality::freebsd4())
        };
        let died = survey_host(2, &dying, 33, &HostJob::default());
        assert_eq!(
            died.outcome,
            HostOutcome::Degraded {
                kind: HostErrorKind::DiedMidMeasurement
            }
        );
        sum.absorb(&died);

        assert_eq!(sum.failed, 1);
        assert_eq!(sum.degraded, 1);
        assert!(sum.failure_rounds >= 1, "blackhole rounds count");
        let unreachable = &sum.failure_taxonomy[HostErrorKind::Unreachable.label()];
        assert_eq!((unreachable.hosts, unreachable.failed), (1, 1));
        assert_eq!(unreachable.by_mechanism["dummynet"], 1);
        assert_eq!(unreachable.by_personality["freebsd4"], 1);
        let dieds = &sum.failure_taxonomy[HostErrorKind::DiedMidMeasurement.label()];
        assert_eq!((dieds.hosts, dieds.degraded), (1, 1));

        let restored =
            CampaignSummary::from_json(&sum.to_json()).expect("taxonomy JSON must parse back");
        assert_eq!(restored.to_json(), sum.to_json());
        assert_eq!(restored.render(), sum.render());

        let rendered = sum.render();
        assert!(rendered.contains("failure taxonomy"), "{rendered}");
        assert!(rendered.contains("unreachable"), "{rendered}");
        assert!(rendered.contains("died-mid-measurement"), "{rendered}");
        assert!(
            rendered.contains("host outcomes: complete 1  degraded 1  failed 1"),
            "{rendered}"
        );
    }

    /// The taxonomy tables render in sorted key order regardless of
    /// insertion order — pinned here as a behavioral contract,
    /// independent of the reorder-lint rule that forbids the unsorted
    /// (HashMap-backed) form at the source level.
    #[test]
    fn failure_taxonomy_render_order_is_insertion_independent() {
        let build = |order: &[&'static str]| {
            let mut sum = CampaignSummary {
                hosts: order.len() as u64,
                ..Default::default()
            };
            for (i, &class) in order.iter().enumerate() {
                let agg = sum.failure_taxonomy.entry(class).or_default();
                agg.hosts = 1;
                agg.failed = 1;
                // Adversarial inner-map order too: rotate so each
                // class inserts mechanisms/personalities differently.
                let mechs = ["tc-netem", "dummynet", "nistnet"];
                let persos = ["winxp", "freebsd4", "linux24"];
                for k in 0..mechs.len() {
                    let j = (i + k) % mechs.len();
                    *agg.by_mechanism.entry(mechs[j]).or_default() += 1;
                    *agg.by_personality.entry(persos[j]).or_default() += 1;
                }
            }
            sum
        };
        let forward = build(&["blackhole", "tarpit", "unreachable"]);
        let reverse = build(&["unreachable", "tarpit", "blackhole"]);
        let rendered = forward.render();
        assert_eq!(
            rendered,
            reverse.render(),
            "taxonomy render must not depend on insertion order"
        );
        // The class rows and the inner mechanism/personality labels
        // appear lexicographically sorted in the rendered table.
        // (Search inside the taxonomy block only — labels like
        // "unreachable" also occur in the summary header above it.)
        let table = &rendered[rendered
            .find("failure taxonomy")
            .expect("taxonomy table present")..];
        for window in [
            ["blackhole", "tarpit", "unreachable"],
            ["dummynet", "nistnet", "tc-netem"],
            ["freebsd4", "linux24", "winxp"],
        ] {
            let at = |label: &str| {
                table
                    .find(label)
                    .unwrap_or_else(|| panic!("{label} missing from:\n{rendered}"))
            };
            assert!(
                at(window[0]) < at(window[1]) && at(window[1]) < at(window[2]),
                "expected sorted order {window:?} in:\n{rendered}"
            );
        }
        // JSON export shares the ordering contract: byte-identical
        // across insertion orders, so checkpoint merges stay exact.
        assert_eq!(forward.to_json(), reverse.to_json());
    }

    /// A clean campaign renders the outcome footer but no taxonomy
    /// table, and rejects checkpoints missing the failure fields
    /// (pre-taxonomy checkpoints must not silently load as zero).
    #[test]
    fn clean_summary_has_footer_but_no_taxonomy() {
        let mut sum = CampaignSummary::default();
        for r in reports(6, 55) {
            sum.absorb(&r);
        }
        assert_eq!(sum.failed + sum.degraded, 0);
        assert!(sum.failure_taxonomy.is_empty());
        let rendered = sum.render();
        assert!(!rendered.contains("failure taxonomy"));
        assert!(rendered.contains("host outcomes: complete 6"), "{rendered}");
        let json = sum.to_json();
        let stripped = json.replace(",\"failure_rounds\":0", "");
        assert!(
            CampaignSummary::from_json(&stripped).is_err(),
            "missing failure fields must be rejected, not defaulted"
        );
    }

    #[test]
    fn summary_absorbs_and_renders() {
        let job = HostJob {
            samples: 5,
            ..HostJob::default()
        };
        let mut sum = CampaignSummary::default();
        for (i, p) in [
            HostPersonality::freebsd4(),
            HostPersonality::openbsd3(),
            HostPersonality::linux24(),
        ]
        .into_iter()
        .enumerate()
        {
            let spec = HostSpec {
                fwd_reorder: 0.2,
                ..HostSpec::clean("agg", p)
            };
            sum.absorb(&survey_host(i as u64, &spec, 700 + i as u64, &job));
        }
        assert_eq!(sum.hosts, 3);
        assert_eq!(sum.amenable, 1);
        assert_eq!(sum.non_monotonic, 1);
        assert_eq!(sum.constant_zero, 1);
        assert!(sum.by_technique.contains_key("dual"));
        assert!(sum.by_technique.contains_key("syn"));
        assert_eq!(sum.by_personality.len(), 3);
        let rendered = sum.render();
        assert!(rendered.contains("campaign summary: 3 hosts"));
        assert!(rendered.contains("by technique"));
        assert!(rendered.contains("by personality"));
        assert!(rendered.contains("by mechanism"));
    }
}
