//! Layer 4a: streaming aggregation.
//!
//! The aggregator absorbs [`HostReport`]s one at a time (the engine
//! feeds it in host-id order) and keeps only O(1) state per breakdown
//! key: merged `(reordered, total)` counts, online mean/CI via
//! [`reorder_core::stats::Streaming`], and fixed-bucket rate
//! histograms. Nothing per-sample is ever retained — memory is
//! O(hosts) for the reports the engine keeps, O(1) here.

use crate::pipeline::HostReport;
use reorder_core::metrics::ReorderEstimate;
use reorder_core::stats::Streaming;
use reorder_core::techniques::IpidVerdict;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Upper bucket bounds of [`RateHistogram`] (a first bucket catches
/// exact zero). Chosen to resolve the Fig. 5 range: most hosts near
/// zero, a tail out to tens of percent.
pub const RATE_BUCKETS: [f64; 8] = [0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1.0];

/// Fixed-bucket histogram over per-host reordering rates — the
/// streaming stand-in for the Fig. 5 CDF.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RateHistogram {
    zero: u64,
    counts: [u64; RATE_BUCKETS.len()],
    /// NaN inputs, quarantined: every `NaN <= bound` comparison is
    /// false, so without this counter a NaN rate would fall through
    /// the bucket scan into the top (25%, 100%] bucket and silently
    /// fatten the heavy-reordering tail.
    nan: u64,
}

impl RateHistogram {
    /// Fold in one host's rate. A NaN rate (no upstream caller
    /// produces one today — pushes are gated on `total > 0`) is
    /// counted in [`RateHistogram::nans`] rather than mis-bucketed.
    pub fn push(&mut self, rate: f64) {
        if rate.is_nan() {
            self.nan += 1;
            return;
        }
        if rate <= 0.0 {
            self.zero += 1;
            return;
        }
        for (i, &ub) in RATE_BUCKETS.iter().enumerate() {
            if rate <= ub {
                self.counts[i] += 1;
                return;
            }
        }
        self.counts[RATE_BUCKETS.len() - 1] += 1;
    }

    /// Total observations, including quarantined NaN inputs.
    pub fn total(&self) -> u64 {
        self.zero + self.nan + self.counts.iter().sum::<u64>()
    }

    /// Hosts with exactly zero measured reordering.
    pub fn zeros(&self) -> u64 {
        self.zero
    }

    /// NaN rates rejected by [`RateHistogram::push`] — never part of
    /// the bucket rows.
    pub fn nans(&self) -> u64 {
        self.nan
    }

    /// `(label, count)` rows, zero bucket first.
    pub fn rows(&self) -> Vec<(String, u64)> {
        let mut rows = vec![("0".to_string(), self.zero)];
        let mut lo = 0.0;
        for (i, &ub) in RATE_BUCKETS.iter().enumerate() {
            rows.push((
                format!("({:.1}%, {:.1}%]", lo * 100.0, ub * 100.0),
                self.counts[i],
            ));
            lo = ub;
        }
        rows
    }
}

/// Per-breakdown-key accumulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct GroupAgg {
    /// Hosts in the group.
    pub hosts: u64,
    /// Pooled forward estimate (sums of counts — order-independent).
    pub fwd: ReorderEstimate,
    /// Pooled reverse estimate.
    pub rev: ReorderEstimate,
    /// Online stats over per-host forward rates.
    pub fwd_rates: Streaming,
}

impl GroupAgg {
    fn absorb(&mut self, r: &HostReport) {
        self.hosts += 1;
        self.fwd = self.fwd.merge(&r.fwd);
        self.rev = self.rev.merge(&r.rev);
        if r.fwd.total > 0 {
            self.fwd_rates.push(r.fwd.rate());
        }
    }
}

/// Campaign-wide streaming summary.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// Hosts surveyed.
    pub hosts: u64,
    /// Hosts with at least one successful measurement round (or, in
    /// amenability-only mode, a verdict).
    pub reachable: u64,
    /// Amenability tallies: amenable / constant-zero / non-monotonic /
    /// probe-failed.
    pub amenable: u64,
    /// Constant-zero IPID verdicts (paper: "likely Linux 2.4").
    pub constant_zero: u64,
    /// Non-monotonic IPID verdicts (paper: "likely load balancers").
    pub non_monotonic: u64,
    /// Amenability probes that failed outright.
    pub probe_failed: u64,
    /// Hosts whose measured fwd or rev rate was nonzero.
    pub reordering_hosts: u64,
    /// Online stats over per-host forward rates.
    pub fwd_rates: Streaming,
    /// Online stats over per-host reverse rates.
    pub rev_rates: Streaming,
    /// Pooled forward estimate over all samples of all hosts.
    pub fwd_pooled: ReorderEstimate,
    /// Pooled reverse estimate.
    pub rev_pooled: ReorderEstimate,
    /// Pooled reverse estimate of the transfer baseline.
    pub baseline_pooled: ReorderEstimate,
    /// Histogram of per-host forward rates.
    pub fwd_hist: RateHistogram,
    /// Breakdown by measuring technique.
    pub by_technique: BTreeMap<&'static str, GroupAgg>,
    /// Breakdown by OS personality.
    pub by_personality: BTreeMap<&'static str, GroupAgg>,
    /// Breakdown by path mechanism.
    pub by_mechanism: BTreeMap<&'static str, GroupAgg>,
    /// Campaign gap profile: gap µs → pooled forward estimate.
    pub gap_profile: BTreeMap<u64, ReorderEstimate>,
}

impl CampaignSummary {
    /// Fold in one host's report. The engine calls this in host-id
    /// order, which pins the floating-point accumulation order and
    /// keeps the rendered summary byte-identical across worker counts.
    pub fn absorb(&mut self, r: &HostReport) {
        self.hosts += 1;
        if r.reachable {
            self.reachable += 1;
        }
        match r.verdict {
            Some(IpidVerdict::Amenable) => self.amenable += 1,
            Some(IpidVerdict::ConstantZero) => self.constant_zero += 1,
            Some(IpidVerdict::NonMonotonic) => self.non_monotonic += 1,
            None => self.probe_failed += 1,
        }
        if r.fwd.reordered > 0 || r.rev.reordered > 0 {
            self.reordering_hosts += 1;
        }
        if r.fwd.total > 0 {
            self.fwd_rates.push(r.fwd.rate());
            self.fwd_hist.push(r.fwd.rate());
        }
        if r.rev.total > 0 {
            self.rev_rates.push(r.rev.rate());
        }
        self.fwd_pooled = self.fwd_pooled.merge(&r.fwd);
        self.rev_pooled = self.rev_pooled.merge(&r.rev);
        if let Some(b) = r.baseline_rev {
            self.baseline_pooled = self.baseline_pooled.merge(&b);
        }
        self.by_technique.entry(r.technique).or_default().absorb(r);
        self.by_personality
            .entry(r.spec.personality.name)
            .or_default()
            .absorb(r);
        self.by_mechanism
            .entry(r.spec.mechanism.label())
            .or_default()
            .absorb(r);
        for &(gap, est) in &r.gap_points {
            let e = self.gap_profile.entry(gap).or_default();
            *e = e.merge(&est);
        }
    }

    /// Render the summary table (deterministic: every map is a
    /// `BTreeMap`, every float printed with fixed precision).
    pub fn render(&self) -> String {
        let mut s = String::new();
        let rule = "-".repeat(66);
        let _ = writeln!(s, "campaign summary: {} hosts", self.hosts);
        let _ = writeln!(s, "{rule}");
        let _ = writeln!(
            s,
            "reachable: {}   unreachable: {}   reordering observed: {}",
            self.reachable,
            self.hosts - self.reachable,
            self.reordering_hosts
        );
        let _ = writeln!(
            s,
            "ipid verdicts: amenable {}  constant-zero {}  non-monotonic {}  failed {}",
            self.amenable, self.constant_zero, self.non_monotonic, self.probe_failed
        );
        if self.fwd_rates.count() > 0 {
            let (lo, hi) = self.fwd_rates.ci(0.95);
            let _ = writeln!(
                s,
                "fwd rate/host: mean {:.4}% (95% CI [{:.4}%, {:.4}%], n={})   pooled {:.4}% ({}/{})",
                self.fwd_rates.mean() * 100.0,
                lo.max(0.0) * 100.0,
                hi * 100.0,
                self.fwd_rates.count(),
                self.fwd_pooled.rate() * 100.0,
                self.fwd_pooled.reordered,
                self.fwd_pooled.total,
            );
        }
        if self.rev_rates.count() > 0 {
            let _ = writeln!(
                s,
                "rev rate/host: mean {:.4}%   pooled {:.4}% ({}/{})   transfer baseline {:.4}% ({}/{})",
                self.rev_rates.mean() * 100.0,
                self.rev_pooled.rate() * 100.0,
                self.rev_pooled.reordered,
                self.rev_pooled.total,
                self.baseline_pooled.rate() * 100.0,
                self.baseline_pooled.reordered,
                self.baseline_pooled.total,
            );
        }
        if self.fwd_hist.total() > 0 {
            let _ = writeln!(s, "{rule}");
            let _ = writeln!(s, "fwd rate histogram (hosts)");
            let max = self
                .fwd_hist
                .rows()
                .iter()
                .map(|&(_, c)| c)
                .max()
                .unwrap_or(1)
                .max(1);
            for (label, count) in self.fwd_hist.rows() {
                let bar = "#".repeat((count * 40 / max) as usize);
                let _ = writeln!(s, "{label:>16} {count:>7}  {bar}");
            }
        }
        for (title, map) in [
            ("technique", &self.by_technique),
            ("personality", &self.by_personality),
            ("mechanism", &self.by_mechanism),
        ] {
            let _ = writeln!(s, "{rule}");
            let _ = writeln!(
                s,
                "{:<14} {:>7} {:>12} {:>12} {:>12}",
                format!("by {title}"),
                "hosts",
                "fwd pooled",
                "fwd mean",
                "rev pooled"
            );
            for (key, g) in map.iter() {
                let _ = writeln!(
                    s,
                    "{key:<14} {:>7} {:>11.4}% {:>11.4}% {:>11.4}%",
                    g.hosts,
                    g.fwd.rate() * 100.0,
                    g.fwd_rates.mean() * 100.0,
                    g.rev.rate() * 100.0,
                );
            }
        }
        if !self.gap_profile.is_empty() {
            let _ = writeln!(s, "{rule}");
            let _ = writeln!(s, "{:>8} {:>12} {:>12}", "gap(us)", "fwd pooled", "samples");
            for (gap, est) in &self.gap_profile {
                let _ = writeln!(
                    s,
                    "{gap:>8} {:>11.4}% {:>12}",
                    est.rate() * 100.0,
                    est.total
                );
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{survey_host, HostJob};
    use reorder_core::scenario::HostSpec;
    use reorder_tcpstack::HostPersonality;

    #[test]
    fn histogram_rejects_nan_instead_of_top_bucketing() {
        // Regression: `NaN <= 0.0` and every `NaN <= bound` are false,
        // so a NaN rate used to fall through the scan into the top
        // (25%, 100%] bucket — a phantom heavy-reordering host.
        let mut h = RateHistogram::default();
        h.push(f64::NAN);
        assert_eq!(h.nans(), 1);
        assert_eq!(h.zeros(), 0);
        assert_eq!(h.total(), 1);
        assert!(
            h.rows().iter().all(|&(_, c)| c == 0),
            "NaN must not land in any bucket row: {:?}",
            h.rows()
        );
        // Real rates keep bucketing as before around the quarantine.
        h.push(0.5);
        assert_eq!(h.rows().last().unwrap().1, 1);
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = RateHistogram::default();
        for r in [0.0, 0.0005, 0.004, 0.02, 0.3, 0.9, 0.0] {
            h.push(r);
        }
        assert_eq!(h.total(), 7);
        assert_eq!(h.zeros(), 2);
        assert_eq!(h.nans(), 0);
        let rows = h.rows();
        assert_eq!(rows.len(), 1 + RATE_BUCKETS.len());
        assert_eq!(rows[0].1, 2); // zero bucket
        assert_eq!(rows[1].1, 1); // (0, 0.1%]
        assert_eq!(rows[2].1, 1); // (0.1%, 0.5%]
        assert_eq!(rows[4].1, 1); // (1%, 2.5%]
        assert_eq!(rows.last().unwrap().1, 2); // (25%, 100%]
        assert_eq!(rows.iter().map(|&(_, c)| c).sum::<u64>(), 7);
    }

    #[test]
    fn summary_absorbs_and_renders() {
        let job = HostJob {
            samples: 5,
            ..HostJob::default()
        };
        let mut sum = CampaignSummary::default();
        for (i, p) in [
            HostPersonality::freebsd4(),
            HostPersonality::openbsd3(),
            HostPersonality::linux24(),
        ]
        .into_iter()
        .enumerate()
        {
            let spec = HostSpec {
                fwd_reorder: 0.2,
                ..HostSpec::clean("agg", p)
            };
            sum.absorb(&survey_host(i as u64, &spec, 700 + i as u64, &job));
        }
        assert_eq!(sum.hosts, 3);
        assert_eq!(sum.amenable, 1);
        assert_eq!(sum.non_monotonic, 1);
        assert_eq!(sum.constant_zero, 1);
        assert!(sum.by_technique.contains_key("dual"));
        assert!(sum.by_technique.contains_key("syn"));
        assert_eq!(sum.by_personality.len(), 3);
        let rendered = sum.render();
        assert!(rendered.contains("campaign summary: 3 hosts"));
        assert!(rendered.contains("by technique"));
        assert!(rendered.contains("by personality"));
        assert!(rendered.contains("by mechanism"));
    }
}
