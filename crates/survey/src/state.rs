//! Portable shard state: the sealed, schema-versioned document one
//! campaign shard hands back to an orchestrator, and the library entry
//! point that produces it.
//!
//! A multi-process campaign (`reorder campaign`) runs each shard as a
//! `reorder survey --shard K/N`-equivalent; instead of printing, the
//! shard serializes its exact aggregation state ([`ShardAggregator`])
//! and merged telemetry into a `reorder.shard/1` document. Every
//! accumulator in that state is a commutative monoid with an exact
//! JSON round-trip, so the orchestrator can merge restored shards in
//! any order — completion order, resume order — and obtain bits
//! identical to a single uninterrupted run. Documents are sealed with
//! a trailing FNV-1a hash ([`seal`]/[`unseal`]): a truncated or
//! bit-flipped file is rejected loudly instead of merged silently.

use crate::aggregate::ShardAggregator;
use crate::engine::{run_campaign, CampaignConfig};
use reorder_core::jsonx;
use reorder_core::telemetry::WorkerTelemetry;
use std::io::{self, Write};

/// Version tag of the shard-state document. Bump on any shape change;
/// readers reject other versions before parsing further.
pub const SHARD_SCHEMA: &str = "reorder.shard/1";

/// Seal a JSON object document with a trailing integrity hash: the
/// FNV-1a of every byte of `doc` is appended as a final `fnv1a64`
/// field. `doc` must be a JSON object (`{...}`).
pub fn seal(doc: &str) -> String {
    assert!(
        doc.starts_with('{') && doc.ends_with('}'),
        "seal() wants a JSON object"
    );
    let hash = jsonx::fnv1a64(doc.as_bytes());
    format!("{},\"fnv1a64\":\"{hash:016x}\"}}", &doc[..doc.len() - 1])
}

/// Verify and strip a [`seal`]ed document's integrity trailer,
/// returning the original payload. Any mismatch — missing trailer,
/// malformed hex, or a hash that does not match the payload bytes —
/// is an error: corruption is surfaced, never absorbed.
pub fn unseal(text: &str) -> Result<String, String> {
    let text = text.trim_end();
    let marker = ",\"fnv1a64\":\"";
    let at = text.rfind(marker).ok_or("missing integrity hash")?;
    let hex = text[at + marker.len()..]
        .strip_suffix("\"}")
        .ok_or("malformed integrity trailer")?;
    if hex.len() != 16 {
        return Err("malformed integrity hash".into());
    }
    let stored = u64::from_str_radix(hex, 16).map_err(|_| "non-hex integrity hash")?;
    let payload = format!("{}}}", &text[..at]);
    let computed = jsonx::fnv1a64(payload.as_bytes());
    if computed != stored {
        return Err(format!(
            "integrity hash mismatch (stored {hex}, computed {computed:016x}): document is corrupt"
        ));
    }
    Ok(payload)
}

/// One completed shard's portable result: the exact aggregation state
/// plus the shard process's merged telemetry and scheduler steal
/// count. Serialized (sealed) with [`ShardState::to_json`]; an
/// orchestrator restores and merges any subset in any order.
#[derive(Debug, Clone)]
pub struct ShardState {
    /// 1-based shard index within the campaign plan.
    pub shard: usize,
    /// Total shards in the plan.
    pub shards: usize,
    /// The shard's exact aggregation state (summary + events).
    pub agg: ShardAggregator,
    /// The shard run's merged worker telemetry.
    pub telemetry: WorkerTelemetry,
    /// Work-stealing events inside the shard's scheduler.
    pub steals: u64,
}

impl ShardState {
    /// Serialize as a sealed `reorder.shard/1` document.
    pub fn to_json(&self) -> String {
        seal(&format!(
            "{{\"schema\":\"{SHARD_SCHEMA}\",\"shard\":{},\"shards\":{},\"steals\":{},\
             \"agg\":{},\"telemetry\":{}}}",
            self.shard,
            self.shards,
            self.steals,
            self.agg.to_json(),
            self.telemetry.state_json(),
        ))
    }

    /// Parse a sealed [`ShardState::to_json`] document: integrity hash
    /// first, then schema version, then the exact state.
    pub fn from_json(text: &str) -> Result<ShardState, String> {
        let payload = unseal(text)?;
        let schema = jsonx::str_field(&payload, "schema")?;
        if schema != SHARD_SCHEMA {
            return Err(format!(
                "unsupported shard-state schema `{schema}` (this build reads {SHARD_SCHEMA})"
            ));
        }
        let shard: usize = jsonx::int_field(&payload, "shard")?;
        let shards: usize = jsonx::int_field(&payload, "shards")?;
        if shards == 0 || shard == 0 || shard > shards {
            return Err(format!("invalid shard index {shard}/{shards}"));
        }
        Ok(ShardState {
            shard,
            shards,
            steals: jsonx::int_field(&payload, "steals")?,
            agg: ShardAggregator::from_json(jsonx::field(&payload, "agg")?)?,
            telemetry: WorkerTelemetry::from_state_json(jsonx::field(&payload, "telemetry")?)?,
        })
    }
}

/// Run shard `k` of `n` of a campaign and return its portable state —
/// the library entry point a campaign orchestrator (or a worker
/// process) uses instead of the printing CLI path. `base.shard` and
/// `base.keep_reports` are overridden: the shard slice comes from
/// `(k, n)` and per-host reports are never retained (the state is the
/// deliverable). When `jsonl` is given the shard's report lines stream
/// to it in host-id order; shard outputs concatenated in shard order
/// are byte-identical to the unsharded campaign.
pub fn run_shard<W: Write>(
    base: &CampaignConfig,
    k: usize,
    n: usize,
    jsonl: Option<&mut W>,
) -> io::Result<ShardState> {
    let cfg = CampaignConfig {
        shard: Some((k, n)),
        keep_reports: false,
        ..base.clone()
    };
    let out = run_campaign(&cfg, jsonl)?;
    Ok(ShardState {
        shard: k,
        shards: n,
        agg: ShardAggregator {
            summary: out.summary,
            events: out.events,
        },
        telemetry: out.telemetry.merged(),
        steals: out.stats.steals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorder_core::telemetry::TelemetryMode;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            hosts: 12,
            workers: 2,
            seed: 99,
            samples: 3,
            baseline: false,
            telemetry: TelemetryMode::Summary,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn seal_round_trips_and_detects_flips() {
        let doc = "{\"k\":1,\"s\":\"txt\"}";
        let sealed = seal(doc);
        assert_eq!(unseal(&sealed).unwrap(), doc);
        // Every single-byte flip anywhere in the sealed document must
        // be detected (either as a broken trailer or a hash mismatch).
        let bytes = sealed.as_bytes();
        for i in 0..bytes.len() {
            let mut corrupt = bytes.to_vec();
            corrupt[i] ^= 0x01;
            if let Ok(s) = std::str::from_utf8(&corrupt) {
                assert!(unseal(s).is_err(), "flip at byte {i} went undetected: {s}");
            }
        }
    }

    #[test]
    fn shard_state_round_trips_exactly() {
        let cfg = quick_cfg();
        let mut jsonl = Vec::new();
        let state = run_shard(&cfg, 1, 2, Some(&mut jsonl)).expect("in-memory sink");
        assert!(state.agg.summary.hosts > 0);
        assert!(!jsonl.is_empty());
        let doc = state.to_json();
        let restored = ShardState::from_json(&doc).expect("sealed doc must parse");
        assert_eq!(restored.to_json(), doc);
        assert_eq!(
            restored.agg.summary.render(),
            state.agg.summary.render(),
            "restored state must render identically"
        );
        assert_eq!(restored.telemetry, state.telemetry);
    }

    #[test]
    fn shard_states_merge_to_the_unsharded_summary() {
        let cfg = quick_cfg();
        let whole = run_campaign(&cfg, None::<&mut Vec<u8>>).expect("no sink");
        let mut merged = ShardAggregator::default();
        // Merge shard 3, then 1, then 2 — completion order, not id
        // order — through a serialize/restore cycle.
        for k in [3usize, 1, 2] {
            let state = run_shard(&cfg, k, 3, None::<&mut Vec<u8>>).expect("no sink");
            let restored = ShardState::from_json(&state.to_json()).expect("parse");
            merged.merge(&restored.agg);
        }
        assert_eq!(merged.summary.render(), whole.summary.render());
        assert_eq!(merged.events, whole.events);
    }

    #[test]
    fn shard_state_rejects_foreign_schema_and_bad_index() {
        let cfg = quick_cfg();
        let state = run_shard(&cfg, 1, 1, None::<&mut Vec<u8>>).expect("no sink");
        let doc = state.to_json();
        let foreign = seal(
            &unseal(&doc)
                .unwrap()
                .replace(SHARD_SCHEMA, "reorder.shard/9"),
        );
        assert!(ShardState::from_json(&foreign)
            .unwrap_err()
            .contains("schema"));
        let bad = seal(&unseal(&doc).unwrap().replace("\"shard\":1", "\"shard\":7"));
        assert!(ShardState::from_json(&bad).is_err());
    }
}
