//! # reorder-survey
//!
//! A sharded, streaming campaign engine that scales the §IV-B host
//! survey of *Measuring Packet Reordering* (Bellardo & Savage, IMC
//! 2002) from the paper's 50 hosts to 100k+ simulated ones.
//!
//! Four layers:
//!
//! 1. [`population`] — generates diverse simulated hosts from
//!    configurable distributions over OS personalities, IPID schemes
//!    and path conditions (loss, jitter, dummynet swaps, striping,
//!    multipath, wireless ARQ, load balancing). Every host is derived
//!    independently from the master seed, so generation is
//!    embarrassingly parallel and shard-count-independent.
//! 2. [`scheduler`] — a work-stealing `std::thread` pool. Each host
//!    simulation stays single-threaded-deterministic; parallelism is
//!    *across* hosts, and idle workers steal from busy shards so slow
//!    scenarios (load-balanced paths, big transfers) don't straggle.
//! 3. [`pipeline`] — the paper's live-host protocol per host, driven
//!    through `reorder_core`'s unified [`Technique`](reorder_core::Technique)
//!    registry: IPID validation first, Dual Connection Test where
//!    amenable, SYN-test fallback, data-transfer baseline; recorded as
//!    an amenability verdict plus per-direction estimates. By default
//!    each host's phases share one connection-caching
//!    [`Session`](reorder_core::Session) (amenability probe,
//!    measurement, baseline and gap sweep reuse handshakes and the
//!    validation verdict — the per-host fast path).
//! 4. [`aggregate`] + [`report`] — sharded, mergeable streaming
//!    aggregation (order-independent mean/CI via
//!    `reorder_core::stats::Moments`, mergeable quantile sketches over
//!    per-host rates via `reorder_core::stats::QuantileSketch`,
//!    per-personality / per-technique / per-mechanism breakdowns, an
//!    optional campaign gap profile) and report sinks (JSONL per host,
//!    a rendered summary table). Memory is O(hosts), never O(samples):
//!    workers reduce each `MeasurementRun` to counts before reporting.
//!
//! The [`engine`] ties them together. Results are byte-identical across
//! reruns *and* worker counts for a fixed master seed: host seeds are
//! derived per host id (not per worker), and every piece of summary
//! state merges exactly (commutative monoids all the way down), so
//! per-worker [`ShardAggregator`]s fold results in completion order
//! and still merge to the same bytes. The id-order reorder buffer is
//! only instantiated when an ordered sink (JSONL, per-host tables)
//! actually needs ordered lines.
//!
//! ```
//! use reorder_survey::{CampaignConfig, run_campaign};
//!
//! let cfg = CampaignConfig {
//!     hosts: 8,
//!     workers: 2,
//!     seed: 42,
//!     samples: 5,
//!     ..CampaignConfig::default()
//! };
//! let out = run_campaign(&cfg, None::<&mut Vec<u8>>).unwrap();
//! assert_eq!(out.reports.len(), 8);
//! assert_eq!(out.summary.hosts, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod engine;
pub mod metrics;
pub mod pipeline;
pub mod population;
pub mod report;
pub mod scheduler;
pub mod state;

pub use aggregate::{CampaignSummary, FailureAgg, RateHistogram, ShardAggregator};
pub use engine::{run_campaign, shard_bounds, CampaignConfig, CampaignOutcome};
pub use metrics::{CampaignTelemetry, METRICS_SCHEMA};
pub use pipeline::{HostJob, HostOutcome, HostReport, TechniqueChoice};
pub use population::PopulationModel;
pub use reorder_core::scenario::SimVersion;
pub use reorder_core::telemetry::{TelemetryMode, WorkerTelemetry};
pub use reorder_core::{Budget, HostErrorKind};
pub use state::{run_shard, seal, unseal, ShardState, SHARD_SCHEMA};
