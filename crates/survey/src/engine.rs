//! The campaign engine: population → sharded scheduler → per-host
//! pipeline → streaming aggregation and sinks.
//!
//! Determinism invariants (asserted by `tests/determinism.rs`):
//!
//! * host `i`'s spec and measurement seed depend only on `(model,
//!   master seed, i)` — never on the worker that ran it;
//! * the JSONL sink and summary absorb results in host-id order via
//!   the scheduler's reorder buffer, pinning float accumulation order;
//! * therefore campaign output is byte-identical across reruns *and*
//!   worker counts.

use crate::aggregate::{CampaignSummary, ShardAggregator};
use crate::metrics::{progress_line, CampaignTelemetry};
use crate::pipeline::{survey_host_traced, HostJob, HostReport, TechniqueChoice};
use crate::population::PopulationModel;
use crate::report::jsonl_line;
use crate::scheduler::{
    resolve_workers, run_folded_probed, run_sharded_probed, PoolStats, RunProbe,
};
use reorder_core::scenario::{ScenarioPool, SimVersion};
use reorder_core::telemetry::{intern_label, TelemetryMode, WorkerTelemetry};
use reorder_core::Budget;
use reorder_netsim::rng as simrng;
use std::io::{self, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Everything a campaign needs.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Hosts to survey.
    pub hosts: usize,
    /// Worker threads (0 = all available cores).
    pub workers: usize,
    /// Master seed; every host seed derives from it.
    pub seed: u64,
    /// Samples per technique run.
    pub samples: usize,
    /// Measurement rounds per host.
    pub rounds: usize,
    /// Technique selection (default: the paper's auto protocol).
    pub technique: TechniqueChoice,
    /// Take the data-transfer reverse-path baseline.
    pub baseline: bool,
    /// Amenability verdicts only, no measurement (§IV-B survey mode).
    pub amenability_only: bool,
    /// Inter-packet gaps (µs) for a campaign-level gap profile.
    pub gaps_us: Vec<u64>,
    /// Share one scenario + connection-caching session across each
    /// host's phases (amenability, rounds, baseline, gap sweep) — see
    /// [`crate::pipeline`]. On by default; off reproduces the PR 2
    /// per-phase protocol.
    pub reuse: bool,
    /// Recycle each worker's simulator allocations across hosts via a
    /// [`ScenarioPool`]. On by default; `--no-pool` is the ablation
    /// arm (byte-identical output, fresh construction per host).
    pub pool: bool,
    /// Simulation format version (the CLI's `--sim-version`): v2
    /// (default) draws striping cross-traffic backlogs from the
    /// stationary M/G/1 workload distribution in O(1); v1 replays the
    /// Poisson burst history per arrival, reproducing pre-v2 campaign
    /// bytes. Output is byte-deterministic *per version* (the
    /// versions' reports intentionally differ — a declared output
    /// break).
    pub sim_version: SimVersion,
    /// Retain per-host [`HostReport`]s in [`CampaignOutcome::reports`].
    /// On by default (library callers inspect them); the CLI turns it
    /// off unless `--per-host` asks for the table. When off **and** no
    /// JSONL sink is attached, the campaign takes the funnel-free
    /// path: per-worker [`ShardAggregator`]s fold results locally and
    /// merge at the end — no reorder buffer, no consuming thread, no
    /// O(hosts) report vector.
    pub keep_reports: bool,
    /// Telemetry mode: `Off` (default) measures nothing; `Summary`
    /// collects counters and phase-span moments; `Full` adds
    /// [`reorder_core::stats::QuantileSketch`] latency distributions.
    /// Telemetry observes and never participates — campaign output is
    /// byte-identical in every mode.
    pub telemetry: TelemetryMode,
    /// Print a throttled heartbeat line to stderr while the campaign
    /// runs (hosts done, hosts/sec, ETA, per-worker utilization).
    /// Never touches stdout, so JSONL piping stays clean.
    pub progress: bool,
    /// Run only shard `k` of `n` (1-based `Some((k, n))`): the
    /// contiguous host-id slice [`shard_bounds`] computes. `None` runs
    /// everything. Concatenating the JSONL outputs of shards 1..=n (in
    /// shard order) is byte-identical to the unsharded campaign, so N
    /// processes or machines can split one master seed's id space.
    pub shard: Option<(usize, usize)>,
    /// Population distributions.
    pub model: PopulationModel,
    /// Per-host probe budget: deadline, retry count and backoff. The
    /// default (generous deadline, no retries) never bites cooperative
    /// hosts, so chaos-free campaigns keep their exact bytes.
    pub budget: Budget,
}

/// The contiguous id range `[lo, hi)` of shard `k` of `n` (1-based)
/// over `hosts` ids. Slices concatenate exactly: shard boundaries are
/// `floor(k * hosts / n)`, so every id lands in exactly one shard and
/// shard order equals id order.
///
/// # Panics
///
/// When `n == 0`, `k == 0` or `k > n` — an invalid shard spec is a
/// configuration bug worth failing loudly on (the CLI validates its
/// `--shard K/N` input before building a config).
pub fn shard_bounds(hosts: usize, k: usize, n: usize) -> (usize, usize) {
    assert!(
        n >= 1 && (1..=n).contains(&k),
        "invalid shard {k}/{n}: want 1 <= K <= N"
    );
    (hosts * (k - 1) / n, hosts * k / n)
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            hosts: 50,
            workers: 0,
            seed: 77,
            samples: 15,
            rounds: 1,
            technique: TechniqueChoice::Auto,
            baseline: true,
            amenability_only: false,
            gaps_us: Vec::new(),
            reuse: true,
            pool: true,
            sim_version: SimVersion::default(),
            keep_reports: true,
            telemetry: TelemetryMode::Off,
            progress: false,
            shard: None,
            model: PopulationModel::default(),
            budget: Budget::default(),
        }
    }
}

/// What a finished campaign hands back.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Per-host reports, in host-id order (O(hosts) memory). Empty
    /// when [`CampaignConfig::keep_reports`] is off.
    pub reports: Vec<HostReport>,
    /// Streaming aggregates.
    pub summary: CampaignSummary,
    /// Scheduler counters (workers used, cross-shard steals).
    pub stats: PoolStats,
    /// Total simulator events dispatched across every host — with wall
    /// time this gives the events/sec figure `exp_scale` records in
    /// `BENCH_campaign.json`.
    pub events: u64,
    /// Campaign telemetry: per-worker counters and span stats,
    /// exactly mergeable ([`CampaignTelemetry::merged`]). Empty when
    /// [`CampaignConfig::telemetry`] was [`TelemetryMode::Off`].
    pub telemetry: CampaignTelemetry,
}

/// Run a campaign. When `jsonl` is given, one JSON line per host is
/// written to it, in host-id order, as results stream in. The only
/// error source is the sink; its first write failure aborts the
/// campaign (remaining hosts are not simulated) and is returned here.
/// A campaign without a sink cannot fail.
///
/// Summary-only campaigns (no sink, [`CampaignConfig::keep_reports`]
/// off) never instantiate the id-order reorder buffer: each worker
/// folds its results into a local [`ShardAggregator`] and the shard
/// states merge associatively at the end. The summary is bit-identical
/// between the two paths — aggregation is order-independent by
/// construction, and the determinism suite asserts it.
pub fn run_campaign<W: Write>(
    cfg: &CampaignConfig,
    jsonl: Option<&mut W>,
) -> io::Result<CampaignOutcome> {
    let job = HostJob {
        samples: cfg.samples.max(1),
        rounds: cfg.rounds.max(1),
        technique: cfg.technique,
        baseline: cfg.baseline,
        amenability_only: cfg.amenability_only,
        gaps_us: cfg.gaps_us.clone(),
        reuse: cfg.reuse,
        telemetry: cfg.telemetry,
        budget: cfg.budget,
    };
    // Host ids this process measures. Specs and seeds key on the
    // absolute id, so a shard's slice of the report is byte-identical
    // to the same lines of the unsharded run.
    let (lo, hi) = match cfg.shard {
        Some((k, n)) => shard_bounds(cfg.hosts, k, n),
        None => (0, cfg.hosts),
    };

    // One simulator pool per worker: recycled allocations, never
    // shared results (simulations are !Send anyway).
    let mk_pool = || {
        if cfg.pool {
            ScenarioPool::new()
        } else {
            ScenarioPool::disabled()
        }
    };
    // The per-host pipeline, shared by both consumption paths: a pure
    // function of (config, master seed, absolute id) — never of the
    // worker that runs it. Telemetry observes into `tel` and never
    // feeds back into the report.
    let job = &job;
    let run_host = |pool: &mut ScenarioPool, tel: &mut WorkerTelemetry, i: usize| -> HostReport {
        let id = (lo + i) as u64;
        let mut spec = cfg.model.host(id, cfg.seed);
        // The version is configuration, not population: stamp it after
        // generation so v1 and v2 campaigns draw identical host specs
        // from identical RNG streams.
        spec.sim_version = cfg.sim_version;
        let host_seed = simrng::derive_seed(cfg.seed, &format!("survey.run.{id}"));
        let report = survey_host_traced(id, &spec, host_seed, job, pool, tel);
        // Outcome counters ride the worker's own telemetry, so they
        // merge partition-invariantly on both consumption paths and
        // surface in the `reorder.metrics/1` export.
        if cfg.telemetry.is_enabled() {
            let key = intern_label(&format!("host.outcome.{}", report.outcome.label()));
            tel.count(key, 1);
        }
        report
    };

    // Live observation surface: `done` always counts completed hosts;
    // timing (busy/idle splits, live utilization) turns on when either
    // telemetry or the progress heartbeat needs it. `workers_used`
    // mirrors the scheduler's own worker resolution.
    let mode = cfg.telemetry;
    let jobs = hi - lo;
    let workers_used = resolve_workers(cfg.workers).min(jobs.max(1));
    let timed = mode.is_enabled() || cfg.progress;
    let probe = RunProbe::new(timed, workers_used);
    let probe = &probe;

    let mut sink = jsonl;
    let mut run = move || -> io::Result<CampaignOutcome> {
        if sink.is_none() && !cfg.keep_reports {
            // Funnel-free path: fold per worker, merge shard
            // aggregators in worker order (any order gives the same
            // bits). Worker telemetry rides the fold state.
            let (shards, stats) = run_folded_probed(
                jobs,
                cfg.workers,
                |_w| {
                    (
                        mk_pool(),
                        (ShardAggregator::default(), WorkerTelemetry::new()),
                    )
                },
                |pool, state: &mut (ShardAggregator, WorkerTelemetry), i| {
                    let (agg, tel) = state;
                    let report = run_host(pool, tel, i);
                    agg.absorb(&report);
                    if mode.is_enabled() {
                        tel.count("agg.absorbs", 1);
                    }
                },
                probe,
            );
            let mut merged = ShardAggregator::default();
            let mut telemetry = CampaignTelemetry {
                mode,
                ..CampaignTelemetry::default()
            };
            for (agg, tel) in shards {
                merged.merge(&agg);
                if mode.is_enabled() {
                    telemetry.campaign.count("agg.merges", 1);
                    telemetry.per_worker.push(tel);
                }
            }
            attach_scheduler_counters(&mut telemetry, &stats);
            return Ok(CampaignOutcome {
                reports: Vec::new(),
                summary: merged.summary,
                stats,
                events: merged.events,
                telemetry,
            });
        }

        // Ordered path: a reorder buffer feeds the sink (and the
        // report vector) in host-id order; the summary shares the same
        // order-independent aggregation code. Per-worker telemetry
        // accumulates in a slot per worker (merged per host — the
        // job closure has no end-of-run hook), absorbs are counted on
        // the collector where they happen.
        let mut reports: Vec<HostReport> =
            Vec::with_capacity(if cfg.keep_reports { jobs } else { 0 });
        let mut agg = ShardAggregator::default();
        let mut collector_tel = WorkerTelemetry::new();
        let tel_slots: Vec<Mutex<WorkerTelemetry>> = (0..workers_used)
            .map(|_| Mutex::new(WorkerTelemetry::new()))
            .collect();
        let mut sink_err: Option<io::Error> = None;
        let stats = run_sharded_probed(
            jobs,
            cfg.workers,
            |w| {
                let mut pool = mk_pool();
                let slot = &tel_slots[w];
                move |i| {
                    let mut tel = WorkerTelemetry::new();
                    let report = run_host(&mut pool, &mut tel, i);
                    if mode.is_enabled() {
                        slot.lock().expect("telemetry slot poisoned").merge(&tel);
                    }
                    report
                }
            },
            |_, report| {
                if let Some(w) = sink.as_mut() {
                    let line = jsonl_line(&report);
                    if let Err(e) = w
                        .write_all(line.as_bytes())
                        .and_then(|()| w.write_all(b"\n"))
                    {
                        // A dead sink (full disk, closed pipe) aborts the
                        // campaign instead of burning the remaining hosts'
                        // simulation time on a report that will be Err anyway.
                        sink_err = Some(e);
                        return std::ops::ControlFlow::Break(());
                    }
                }
                agg.absorb(&report);
                if mode.is_enabled() {
                    collector_tel.count("agg.absorbs", 1);
                }
                if cfg.keep_reports {
                    reports.push(report);
                }
                std::ops::ControlFlow::Continue(())
            },
            probe,
        );

        let mut telemetry = CampaignTelemetry {
            mode,
            campaign: collector_tel,
            ..CampaignTelemetry::default()
        };
        if mode.is_enabled() {
            telemetry.per_worker = tel_slots
                .into_iter()
                .map(|m| m.into_inner().expect("telemetry slot poisoned"))
                .collect();
        }
        attach_scheduler_counters(&mut telemetry, &stats);
        match sink_err {
            Some(e) => Err(e),
            None => Ok(CampaignOutcome {
                reports,
                summary: agg.summary,
                stats,
                events: agg.events,
                telemetry,
            }),
        }
    };

    if !cfg.progress {
        return run();
    }

    // Heartbeat: a watcher thread reads the probe and prints a
    // throttled progress line to stderr. stderr only — stdout belongs
    // to pinned report bytes — and nothing here feeds back into the
    // campaign, so output stays byte-identical with the flag on.
    // reorder-lint: allow(wall-clock, progress heartbeat timing; stderr-only and never feeds report bytes)
    let started = Instant::now();
    let total = jobs as u64;
    let stop = AtomicBool::new(false);
    let stop = &stop;
    std::thread::scope(|s| {
        s.spawn(move || {
            let mut last = 0.0f64;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(Duration::from_millis(50));
                let elapsed = started.elapsed().as_secs_f64();
                if elapsed - last >= 0.5 {
                    last = elapsed;
                    let busy: Vec<u64> = (0..probe.slots()).map(|w| probe.busy_ns(w)).collect();
                    let done = probe.done.load(Ordering::Relaxed);
                    eprintln!("{}", progress_line(done, total, elapsed, &busy));
                }
            }
        });
        let result = run();
        stop.store(true, Ordering::Relaxed);
        result
    })
}

/// Fold the scheduler's per-worker counters ([`crate::scheduler::WorkerStats`])
/// into the matching worker's telemetry, under `sched.*` keys. No-op
/// when telemetry is off.
fn attach_scheduler_counters(tel: &mut CampaignTelemetry, stats: &PoolStats) {
    if !tel.mode.is_enabled() {
        return;
    }
    for (tel_w, ws) in tel.per_worker.iter_mut().zip(&stats.per_worker) {
        tel_w.count("sched.tasks", ws.tasks);
        tel_w.count("sched.steal_attempts", ws.steal_attempts);
        tel_w.count("sched.steals", ws.steals);
        tel_w.count("sched.busy_ns", ws.busy_ns);
        tel_w.count("sched.idle_ns", ws.idle_ns);
        tel_w.count("sched.wall_ns", ws.wall_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(hosts: usize, workers: usize) -> (Vec<u8>, CampaignOutcome) {
        let cfg = CampaignConfig {
            hosts,
            workers,
            seed: 11,
            samples: 4,
            baseline: false,
            ..CampaignConfig::default()
        };
        let mut buf = Vec::new();
        let out = run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
        (buf, out)
    }

    #[test]
    fn reports_arrive_in_id_order() {
        let (buf, out) = quick(12, 3);
        assert_eq!(out.reports.len(), 12);
        assert!(out
            .reports
            .iter()
            .enumerate()
            .all(|(k, r)| r.id == k as u64));
        assert_eq!(out.summary.hosts, 12);
        assert_eq!(
            buf.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count(),
            12
        );
    }

    #[test]
    fn worker_count_does_not_change_output() {
        let (a, _) = quick(10, 1);
        let (b, _) = quick(10, 4);
        assert_eq!(a, b);
    }

    #[test]
    fn dead_sink_aborts_early() {
        struct FailAfter(usize);
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.0 == 0 {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "sink full"));
                }
                self.0 -= 1;
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let cfg = CampaignConfig {
            hosts: 64,
            workers: 2,
            seed: 4,
            samples: 3,
            baseline: false,
            amenability_only: true,
            ..CampaignConfig::default()
        };
        // 2 writes per host (line + newline): fail inside host 2's line.
        let mut sink = FailAfter(5);
        let err = run_campaign(&cfg, Some(&mut sink)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
    }

    #[test]
    fn shard_bounds_partition_exactly() {
        for hosts in [0usize, 1, 7, 100, 101] {
            for n in [1usize, 2, 3, 7] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for k in 1..=n {
                    let (lo, hi) = shard_bounds(hosts, k, n);
                    assert_eq!(lo, prev_hi, "shards must be contiguous");
                    assert!(hi >= lo);
                    covered += hi - lo;
                    prev_hi = hi;
                }
                assert_eq!(prev_hi, hosts, "last shard must end at hosts");
                assert_eq!(covered, hosts, "every id in exactly one shard");
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid shard")]
    fn shard_zero_of_n_rejected() {
        shard_bounds(10, 0, 4);
    }

    #[test]
    #[should_panic(expected = "invalid shard")]
    fn shard_k_above_n_rejected() {
        shard_bounds(10, 5, 4);
    }

    #[test]
    fn sharded_campaign_reports_only_its_slice() {
        let cfg = CampaignConfig {
            hosts: 10,
            workers: 2,
            seed: 21,
            samples: 3,
            baseline: false,
            amenability_only: true,
            shard: Some((2, 3)),
            ..CampaignConfig::default()
        };
        let out = run_campaign(&cfg, None::<&mut Vec<u8>>).expect("no sink");
        let (lo, hi) = shard_bounds(10, 2, 3);
        assert_eq!(out.reports.len(), hi - lo);
        assert!(out
            .reports
            .iter()
            .enumerate()
            .all(|(k, r)| r.id == (lo + k) as u64));
        assert_eq!(out.summary.hosts, (hi - lo) as u64);
    }

    #[test]
    fn telemetry_never_changes_output() {
        // Telemetry observes; campaign bytes must be identical across
        // every mode (and with the progress heartbeat armed).
        let base = CampaignConfig {
            hosts: 8,
            workers: 2,
            seed: 31,
            samples: 4,
            baseline: false,
            ..CampaignConfig::default()
        };
        let mut runs = Vec::new();
        for (telemetry, progress) in [
            (TelemetryMode::Off, false),
            (TelemetryMode::Summary, false),
            (TelemetryMode::Full, true),
        ] {
            let cfg = CampaignConfig {
                telemetry,
                progress,
                ..base.clone()
            };
            let mut buf = Vec::new();
            let out = run_campaign(&cfg, Some(&mut buf)).expect("in-memory sink");
            runs.push((buf, out.summary.render()));
        }
        assert_eq!(runs[0], runs[1], "Summary mode changed output");
        assert_eq!(runs[0], runs[2], "Full mode + progress changed output");
    }

    #[test]
    fn telemetry_counters_are_worker_count_invariant() {
        // The mergeable-monoid contract end to end: however hosts are
        // partitioned across workers (and whichever consumption path
        // runs), the merged counters are identical.
        let run = |workers: usize, keep_reports: bool| {
            let cfg = CampaignConfig {
                hosts: 12,
                workers,
                seed: 5,
                samples: 4,
                baseline: false,
                keep_reports,
                telemetry: TelemetryMode::Summary,
                ..CampaignConfig::default()
            };
            run_campaign(&cfg, None::<&mut Vec<u8>>).expect("no sink")
        };
        let baseline = run(1, true);
        let merged = baseline.telemetry.merged();
        assert_eq!(merged.counter("netsim.events"), baseline.events);
        assert_eq!(merged.counter("agg.absorbs"), 12);
        assert_eq!(merged.counter("sched.tasks"), 12);
        assert!(merged.counter("pool.hits") > 0, "pooled run must recycle");
        for workers in [2, 4] {
            for keep_reports in [true, false] {
                let out = run(workers, keep_reports);
                let m = out.telemetry.merged();
                for key in [
                    "netsim.events",
                    "netsim.calendar_overflow",
                    "pool.hits",
                    "pool.misses",
                    "agg.absorbs",
                    "sched.tasks",
                ] {
                    // Pool misses are per-worker first builds, so they
                    // scale with the worker count — but hits + misses
                    // (total checkouts) must not.
                    if key == "pool.misses" || key == "pool.hits" {
                        continue;
                    }
                    assert_eq!(
                        m.counter(key),
                        merged.counter(key),
                        "{key} must be partition-invariant (workers={workers}, keep={keep_reports})"
                    );
                }
                assert_eq!(
                    m.counter("pool.hits") + m.counter("pool.misses"),
                    merged.counter("pool.hits") + merged.counter("pool.misses"),
                    "total checkouts invariant (workers={workers})"
                );
                let span = m.span_stats("host").expect("host span recorded");
                assert_eq!(span.count(), 12, "one host span per host");
            }
        }
    }

    #[test]
    fn telemetry_off_records_nothing() {
        let cfg = CampaignConfig {
            hosts: 4,
            workers: 2,
            seed: 9,
            samples: 3,
            baseline: false,
            ..CampaignConfig::default()
        };
        let out = run_campaign(&cfg, None::<&mut Vec<u8>>).expect("no sink");
        assert_eq!(out.telemetry, crate::metrics::CampaignTelemetry::disabled());
        assert!(out.telemetry.merged().is_empty());
    }

    #[test]
    fn summary_matches_reports() {
        let (_, out) = quick(10, 2);
        let reachable = out.reports.iter().filter(|r| r.reachable).count() as u64;
        assert_eq!(out.summary.reachable, reachable);
        let techniques: u64 = out.summary.by_technique.values().map(|g| g.hosts).sum();
        assert_eq!(techniques, 10);
    }
}
