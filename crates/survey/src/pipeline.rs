//! Layer 3: the per-host measurement pipeline — the paper's live-host
//! protocol (§IV-B), automated.
//!
//! Per host: validate the IPID space first (the §III-C pre-check),
//! run the Dual Connection Test where amenable, fall back to the SYN
//! test otherwise (it is immune to per-flow load balancers and IPID
//! schemes), and take a data-transfer baseline of the reverse path
//! when the host serves an object spanning ≥ 2 segments. Every
//! `MeasurementRun` is reduced to `(reordered, total)` counts on the
//! worker before it leaves this module — the aggregation stays
//! O(hosts), not O(samples).

use reorder_core::metrics::ReorderEstimate;
use reorder_core::sample::TestConfig;
use reorder_core::scenario::{self, HostSpec};
use reorder_core::techniques::{
    DataTransferTest, DualConnectionTest, IpidVerdict, SingleConnectionTest, SynTest,
};
use reorder_core::{MeasurementRun, ProbeError};
use reorder_netsim::rng as simrng;
use std::fmt;
use std::time::Duration;

/// Which technique a campaign runs against each host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechniqueChoice {
    /// The paper's protocol: IPID-validate, then dual where amenable,
    /// SYN test otherwise.
    Auto,
    /// Force the Single Connection Test (reversed variant).
    Single,
    /// Force the Dual Connection Test.
    Dual,
    /// Force the SYN test.
    Syn,
    /// Force the data-transfer baseline (reverse path only).
    Transfer,
}

impl TechniqueChoice {
    /// Every accepted spelling, for error messages and usage text.
    pub const ACCEPTED: [&'static str; 5] = ["auto", "single", "dual", "syn", "transfer"];

    /// Exhaustive, case-sensitive parse. The error lists the accepted
    /// set so an unknown value is never silently ignored.
    pub fn parse(name: &str) -> Result<TechniqueChoice, String> {
        match name {
            "auto" => Ok(TechniqueChoice::Auto),
            "single" => Ok(TechniqueChoice::Single),
            "dual" => Ok(TechniqueChoice::Dual),
            "syn" => Ok(TechniqueChoice::Syn),
            "transfer" => Ok(TechniqueChoice::Transfer),
            other => Err(format!(
                "unknown technique `{other}` (accepted: {})",
                TechniqueChoice::ACCEPTED.join(", ")
            )),
        }
    }
}

impl fmt::Display for TechniqueChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TechniqueChoice::Auto => "auto",
            TechniqueChoice::Single => "single",
            TechniqueChoice::Dual => "dual",
            TechniqueChoice::Syn => "syn",
            TechniqueChoice::Transfer => "transfer",
        };
        f.write_str(s)
    }
}

/// Knobs of one host's pipeline run (shared by every host of a
/// campaign).
#[derive(Debug, Clone)]
pub struct HostJob {
    /// Samples per technique run.
    pub samples: usize,
    /// Measurement rounds (fresh path realization each round).
    pub rounds: usize,
    /// Technique selection.
    pub technique: TechniqueChoice,
    /// Take the data-transfer reverse-path baseline too.
    pub baseline: bool,
    /// Stop after the amenability verdict (the §IV-B survey mode of
    /// `exp_amenability`).
    pub amenability_only: bool,
    /// Extra inter-packet gaps (µs) to measure at, for a campaign-level
    /// gap profile (§IV-C). Empty = skip.
    pub gaps_us: Vec<u64>,
}

impl Default for HostJob {
    fn default() -> Self {
        HostJob {
            samples: 15,
            rounds: 1,
            technique: TechniqueChoice::Auto,
            baseline: true,
            amenability_only: false,
            gaps_us: Vec::new(),
        }
    }
}

/// Everything the campaign keeps per host — O(1) in the sample count.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Host index within the campaign.
    pub id: u64,
    /// The generated ground-truth spec (kept for breakdowns and
    /// validation against verdicts).
    pub spec: HostSpec,
    /// IPID-validation verdict; `None` when the probe itself failed.
    pub verdict: Option<IpidVerdict>,
    /// Technique that produced `fwd`/`rev` ("none" in amenability-only
    /// mode or when every round failed).
    pub technique: &'static str,
    /// Forward-path estimate, merged over rounds.
    pub fwd: ReorderEstimate,
    /// Reverse-path estimate, merged over rounds.
    pub rev: ReorderEstimate,
    /// Reverse-path estimate of the data-transfer baseline, when taken.
    pub baseline_rev: Option<ReorderEstimate>,
    /// `(gap_us, forward estimate)` sweep points, when requested.
    pub gap_points: Vec<(u64, ReorderEstimate)>,
    /// Rounds that produced no measurement.
    pub failures: usize,
    /// False when every round failed (the host is effectively
    /// unreachable to the chosen technique).
    pub reachable: bool,
}

fn run_one(
    kind: &'static str,
    spec: &HostSpec,
    seed: u64,
    cfg: TestConfig,
) -> Result<MeasurementRun, ProbeError> {
    let mut sc = scenario::internet_host(spec, seed);
    match kind {
        "single" => SingleConnectionTest::reversed(cfg).run(&mut sc.prober, sc.target, 80),
        "dual" => DualConnectionTest::new(cfg).run(&mut sc.prober, sc.target, 80),
        "syn" => SynTest::new(cfg).run(&mut sc.prober, sc.target, 80),
        "transfer" => DataTransferTest::new(cfg).run(&mut sc.prober, sc.target, 80),
        other => unreachable!("technique {other} validated upstream"),
    }
}

/// Run the full pipeline against host `id`. `host_seed` must already be
/// host-specific (the engine derives it from the master seed and id);
/// every scenario in here derives a labeled child seed from it, so the
/// pipeline is a pure function of `(spec, host_seed, job)`.
pub fn survey_host(id: u64, spec: &HostSpec, host_seed: u64, job: &HostJob) -> HostReport {
    let cfg = TestConfig::samples(job.samples);

    // 1. IPID validation (§III-C pre-check) on its own connections.
    let verdict = {
        let mut sc = scenario::internet_host(spec, simrng::derive_seed(host_seed, "amenability"));
        DualConnectionTest::new(TestConfig::samples(5))
            .probe_amenability(&mut sc.prober, sc.target, 80)
            .ok()
    };

    let mut report = HostReport {
        id,
        spec: spec.clone(),
        verdict,
        technique: "none",
        fwd: ReorderEstimate::new(0, 0),
        rev: ReorderEstimate::new(0, 0),
        baseline_rev: None,
        gap_points: Vec::new(),
        failures: 0,
        reachable: verdict.is_some(),
    };
    if job.amenability_only {
        return report;
    }

    // 2/3. Technique selection: dual where amenable, SYN fallback.
    let primary: &'static str = match job.technique {
        TechniqueChoice::Auto => {
            if verdict == Some(IpidVerdict::Amenable) {
                "dual"
            } else {
                "syn"
            }
        }
        TechniqueChoice::Single => "single",
        TechniqueChoice::Dual => "dual",
        TechniqueChoice::Syn => "syn",
        TechniqueChoice::Transfer => "transfer",
    };

    // Once a round succeeds, the technique is pinned for the host's
    // remaining rounds (and fallback is disabled): the merged fwd/rev
    // counts must all come from one technique, or the per-technique
    // breakdowns would mislabel mixed samples.
    let mut chosen: Option<&'static str> = None;
    for round in 0..job.rounds {
        let kind = chosen.unwrap_or(primary);
        let seed = simrng::derive_seed(host_seed, &format!("round{round}"));
        let mut outcome = run_one(kind, spec, seed, cfg).map(|r| (kind, r));
        if outcome.is_err()
            && chosen.is_none()
            && job.technique == TechniqueChoice::Auto
            && kind == "dual"
        {
            // Mid-measurement dual failure (e.g. loss-induced timeout):
            // fall back to the SYN test on a fresh path realization.
            let seed = simrng::derive_seed(host_seed, &format!("round{round}.fallback"));
            outcome = run_one("syn", spec, seed, cfg).map(|r| ("syn", r));
        }
        match outcome {
            Ok((kind, run)) => {
                chosen = Some(kind);
                report.technique = kind;
                report.fwd = report.fwd.merge(&run.fwd_estimate());
                report.rev = report.rev.merge(&run.rev_estimate());
            }
            Err(_) => report.failures += 1,
        }
    }
    report.reachable = chosen.is_some();

    // 4. Data-transfer baseline of the reverse path (skipped when the
    // primary *is* the transfer test).
    if job.baseline && primary != "transfer" {
        let seed = simrng::derive_seed(host_seed, "baseline");
        report.baseline_rev = run_one("transfer", spec, seed, TestConfig::default())
            .ok()
            .map(|r| r.rev_estimate());
    }

    // Optional §IV-C gap sweep for the campaign-level profile. Skipped
    // for unreachable hosts: every sweep point would burn a full
    // doomed measurement attempt per gap.
    if report.reachable {
        for &gap in &job.gaps_us {
            let seed = simrng::derive_seed(host_seed, &format!("gap{gap}"));
            let gcfg = TestConfig::samples(job.samples).with_gap(Duration::from_micros(gap));
            if let Ok(run) = run_one(report.technique, spec, seed, gcfg) {
                report.gap_points.push((gap, run.fwd_estimate()));
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorder_tcpstack::HostPersonality;

    #[test]
    fn parse_is_exhaustive() {
        for name in TechniqueChoice::ACCEPTED {
            assert!(TechniqueChoice::parse(name).is_ok(), "{name}");
        }
        let err = TechniqueChoice::parse("bogus").unwrap_err();
        for name in TechniqueChoice::ACCEPTED {
            assert!(err.contains(name), "error must list `{name}`: {err}");
        }
        assert_eq!(TechniqueChoice::parse("auto").unwrap().to_string(), "auto");
    }

    #[test]
    fn amenable_host_uses_dual() {
        let spec = HostSpec::clean("dual-ok", HostPersonality::freebsd4());
        let r = survey_host(0, &spec, 101, &HostJob::default());
        assert_eq!(r.verdict, Some(IpidVerdict::Amenable));
        assert_eq!(r.technique, "dual");
        assert!(r.reachable);
        assert!(r.fwd.total > 0);
        assert!(r.baseline_rev.is_some(), "12KiB object supports baseline");
    }

    #[test]
    fn random_ipid_host_falls_back_to_syn() {
        let spec = HostSpec::clean("syn-fallback", HostPersonality::openbsd3());
        let r = survey_host(1, &spec, 202, &HostJob::default());
        assert_eq!(r.verdict, Some(IpidVerdict::NonMonotonic));
        assert_eq!(r.technique, "syn");
        assert!(r.reachable);
        assert!(r.fwd.total > 0);
    }

    #[test]
    fn multi_round_merges_one_technique() {
        let spec = HostSpec {
            fwd_reorder: 0.1,
            ..HostSpec::clean("rounds", HostPersonality::freebsd4())
        };
        let job = HostJob {
            samples: 6,
            rounds: 3,
            baseline: false,
            ..HostJob::default()
        };
        let r = survey_host(9, &spec, 808, &job);
        assert_eq!(r.technique, "dual");
        assert_eq!(r.failures, 0);
        // All three rounds' samples merged under the pinned technique.
        assert!(r.fwd.total >= 15, "merged totals, got {:?}", r.fwd);
    }

    #[test]
    fn amenability_only_skips_measurement() {
        let spec = HostSpec::clean("probe-only", HostPersonality::linux24());
        let job = HostJob {
            amenability_only: true,
            ..HostJob::default()
        };
        let r = survey_host(2, &spec, 303, &job);
        assert_eq!(r.verdict, Some(IpidVerdict::ConstantZero));
        assert_eq!(r.technique, "none");
        assert_eq!(r.fwd.total, 0);
        assert!(r.baseline_rev.is_none());
    }

    #[test]
    fn small_object_defeats_baseline_not_measurement() {
        let spec = HostSpec {
            object_size: 256,
            ..HostSpec::clean("redirect", HostPersonality::freebsd4())
        };
        let r = survey_host(3, &spec, 404, &HostJob::default());
        assert!(r.reachable);
        assert!(r.baseline_rev.is_none(), "redirect-sized object");
    }

    #[test]
    fn gap_sweep_recorded() {
        let spec = HostSpec::clean("gaps", HostPersonality::freebsd4());
        let job = HostJob {
            samples: 5,
            gaps_us: vec![0, 100],
            ..HostJob::default()
        };
        let r = survey_host(4, &spec, 505, &job);
        assert_eq!(r.gap_points.len(), 2);
        assert_eq!(r.gap_points[0].0, 0);
        assert_eq!(r.gap_points[1].0, 100);
    }

    #[test]
    fn pipeline_is_deterministic() {
        let m = crate::population::PopulationModel::default();
        let spec = m.host(7, 42);
        let a = survey_host(7, &spec, 606, &HostJob::default());
        let b = survey_host(7, &spec, 606, &HostJob::default());
        assert_eq!(a.verdict, b.verdict);
        assert_eq!(a.technique, b.technique);
        assert_eq!(a.fwd, b.fwd);
        assert_eq!(a.rev, b.rev);
        assert_eq!(a.baseline_rev, b.baseline_rev);
    }
}
