//! Layer 3: the per-host measurement pipeline — the paper's live-host
//! protocol (§IV-B), automated over `reorder_core`'s unified
//! measurement API.
//!
//! Per host: validate the IPID space first (the §III-C pre-check),
//! run the Dual Connection Test where amenable, fall back to the SYN
//! test otherwise (it is immune to per-flow load balancers and IPID
//! schemes), and take a data-transfer baseline of the reverse path
//! when the host serves an object spanning ≥ 2 segments. Every phase
//! dispatches through the [`reorder_core::Technique`] registry and
//! reduces to a [`reorder_core::Measurement`] on the worker — the
//! aggregation stays O(hosts), not O(samples).
//!
//! ## Connection reuse
//!
//! With [`HostJob::reuse`] (the default) one simulated path and one
//! [`Session`] serve the whole host: the amenability probe's two
//! connections are kept open and handed to the dual-connection
//! measurement, the IPID validation runs once instead of per phase,
//! and the baseline and gap sweep ride the same scenario. That removes
//! two scenario constructions, two handshakes and a full validation
//! round per amenable host — the ROADMAP's ~30% per-host win,
//! measured by `benches/campaign.rs`. Reuse trades per-phase path
//! independence (every phase now sees one realization of the path's
//! randomness) for speed; per-host estimates remain unbiased because
//! the realization is still drawn independently per host. `reuse:
//! false` reproduces the PR 2 per-phase-scenario protocol exactly.

use reorder_core::metrics::ReorderEstimate;
use reorder_core::sample::TestConfig;
use reorder_core::scenario::{HostSpec, ScenarioPool};
use reorder_core::techniques::{IpidVerdict, TestKind};
use reorder_core::telemetry::{TelemetryMode, WorkerTelemetry};
use reorder_core::{technique, Budget, HostErrorKind, Measurement, Measurer, ProbeError, Session};
use reorder_netsim::rng as simrng;
use std::cell::Cell;
use std::fmt;
use std::time::Duration;

/// Which technique a campaign runs against each host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechniqueChoice {
    /// The paper's protocol: IPID-validate, then dual where amenable,
    /// SYN test otherwise.
    Auto,
    /// Force one specific technique on every host. Both
    /// single-connection variants are addressable (`single` is the
    /// in-order variant, `single-rev` the delayed-ACK-proof reversed
    /// one — historically `single` silently ran the reversed variant).
    Fixed(TestKind),
}

impl TechniqueChoice {
    /// Every accepted spelling, for error messages and usage text:
    /// `auto` plus the [`TestKind::ACCEPTED`] set.
    pub const ACCEPTED: [&'static str; 6] =
        ["auto", "single", "single-rev", "dual", "syn", "transfer"];

    /// Exhaustive, case-sensitive parse. The error lists the accepted
    /// set so an unknown value is never silently ignored.
    pub fn parse(name: &str) -> Result<TechniqueChoice, String> {
        if name == "auto" {
            return Ok(TechniqueChoice::Auto);
        }
        name.parse::<TestKind>()
            .map(TechniqueChoice::Fixed)
            .map_err(|_| {
                format!(
                    "unknown technique `{name}` (accepted: {})",
                    TechniqueChoice::ACCEPTED.join(", ")
                )
            })
    }
}

impl fmt::Display for TechniqueChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TechniqueChoice::Auto => f.write_str("auto"),
            TechniqueChoice::Fixed(kind) => write!(f, "{kind}"),
        }
    }
}

/// How a host's pipeline run ended — the campaign's graceful-degradation
/// ladder. `Complete` hosts measured everything they were asked to;
/// `Degraded` hosts produced usable partial results (some rounds
/// failed, the amenability probe errored, or the per-host [`Budget`]
/// deadline cut later phases); `Failed` hosts produced no measurement
/// at all, classified by [`HostErrorKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostOutcome {
    /// Every requested phase succeeded.
    Complete,
    /// Partial results were kept; `kind` names the dominant failure.
    Degraded {
        /// Why the host fell short of a complete run.
        kind: HostErrorKind,
    },
    /// No measurement succeeded.
    Failed {
        /// Why the host failed outright.
        kind: HostErrorKind,
    },
}

impl HostOutcome {
    /// Stable JSONL label: `complete`, `degraded/<kind>` or
    /// `failed/<kind>`.
    pub fn label(&self) -> String {
        match self {
            HostOutcome::Complete => "complete".to_string(),
            HostOutcome::Degraded { kind } => format!("degraded/{kind}"),
            HostOutcome::Failed { kind } => format!("failed/{kind}"),
        }
    }

    /// The failure-taxonomy key the campaign summary aggregates under:
    /// failed and degraded hosts by their classified error kind (the
    /// severity split lives in the [`crate::aggregate::FailureAgg`]
    /// columns), complete hosts nowhere.
    pub fn taxonomy(&self) -> Option<&'static str> {
        match self {
            HostOutcome::Complete => None,
            HostOutcome::Degraded { kind } | HostOutcome::Failed { kind } => Some(kind.label()),
        }
    }

    /// The classified error, when the run was not complete.
    pub fn kind(&self) -> Option<HostErrorKind> {
        match self {
            HostOutcome::Complete => None,
            HostOutcome::Degraded { kind } | HostOutcome::Failed { kind } => Some(*kind),
        }
    }
}

impl fmt::Display for HostOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// Knobs of one host's pipeline run (shared by every host of a
/// campaign).
#[derive(Debug, Clone)]
pub struct HostJob {
    /// Samples per technique run.
    pub samples: usize,
    /// Measurement rounds. Without reuse every round is a fresh path
    /// realization; with reuse the rounds extend the same session
    /// (more samples, one realization).
    pub rounds: usize,
    /// Technique selection.
    pub technique: TechniqueChoice,
    /// Take the data-transfer reverse-path baseline too.
    pub baseline: bool,
    /// Stop after the amenability verdict (the §IV-B survey mode of
    /// `exp_amenability`).
    pub amenability_only: bool,
    /// Extra inter-packet gaps (µs) to measure at, for a campaign-level
    /// gap profile (§IV-C). Empty = skip.
    pub gaps_us: Vec<u64>,
    /// Share one scenario and one connection-caching [`Session`] across
    /// the host's phases (see the module docs).
    pub reuse: bool,
    /// Telemetry mode for phase spans and pipeline counters (recorded
    /// into the [`WorkerTelemetry`] handed to [`survey_host_traced`]).
    /// `Off` (the default) measures nothing — a few branches, no clock.
    pub telemetry: TelemetryMode,
    /// Per-host spending cap: simulated-time deadline, transient-retry
    /// count and retry backoff. The default is generous enough that no
    /// cooperative host ever notices it.
    pub budget: Budget,
}

impl Default for HostJob {
    fn default() -> Self {
        HostJob {
            samples: 15,
            rounds: 1,
            technique: TechniqueChoice::Auto,
            baseline: true,
            amenability_only: false,
            gaps_us: Vec::new(),
            reuse: true,
            telemetry: TelemetryMode::Off,
            budget: Budget::default(),
        }
    }
}

/// Everything the campaign keeps per host — O(1) in the sample count.
#[derive(Debug, Clone)]
pub struct HostReport {
    /// Host index within the campaign.
    pub id: u64,
    /// The generated ground-truth spec (kept for breakdowns and
    /// validation against verdicts).
    pub spec: HostSpec,
    /// IPID-validation verdict; `None` when the probe itself failed.
    pub verdict: Option<IpidVerdict>,
    /// Technique that produced `fwd`/`rev` ("none" in amenability-only
    /// mode or when every round failed).
    pub technique: &'static str,
    /// Forward-path estimate, merged over rounds.
    pub fwd: ReorderEstimate,
    /// Reverse-path estimate, merged over rounds.
    pub rev: ReorderEstimate,
    /// Reverse-path estimate of the data-transfer baseline, when taken.
    pub baseline_rev: Option<ReorderEstimate>,
    /// `(gap_us, forward estimate)` sweep points, when requested.
    pub gap_points: Vec<(u64, ReorderEstimate)>,
    /// Rounds that produced no measurement.
    pub failures: usize,
    /// False when every round failed (the host is effectively
    /// unreachable to the chosen technique).
    pub reachable: bool,
    /// How the run ended: complete, degraded (partial results kept) or
    /// failed, with the classified [`HostErrorKind`].
    pub outcome: HostOutcome,
    /// Simulator events this host's pipeline dispatched (perf
    /// observability; not part of the JSONL report).
    pub events: u64,
}

fn empty_report(id: u64, spec: &HostSpec, verdict: Option<IpidVerdict>) -> HostReport {
    HostReport {
        id,
        spec: spec.clone(),
        verdict,
        technique: "none",
        fwd: ReorderEstimate::new(0, 0),
        rev: ReorderEstimate::new(0, 0),
        baseline_rev: None,
        gap_points: Vec::new(),
        failures: 0,
        reachable: verdict.is_some(),
        outcome: HostOutcome::Complete,
        events: 0,
    }
}

/// The paper's auto-selection rule: dual where the IPID space
/// validated, SYN fallback otherwise.
fn primary_kind(choice: TechniqueChoice, verdict: Option<IpidVerdict>) -> TestKind {
    match choice {
        TechniqueChoice::Auto => {
            if verdict == Some(IpidVerdict::Amenable) {
                TestKind::DualConnection
            } else {
                TestKind::Syn
            }
        }
        TechniqueChoice::Fixed(kind) => kind,
    }
}

fn absorb_round(report: &mut HostReport, chosen: &mut Option<TestKind>, m: &Measurement) {
    *chosen = Some(m.kind);
    report.technique = m.kind.label();
    report.fwd = report.fwd.merge(&m.fwd);
    report.rev = report.rev.merge(&m.rev);
}

/// One measurement phase of the per-host protocol. The fresh mode
/// derives a labeled child seed per phase (so each phase is its own
/// path realization); the reusing mode ignores the label and runs the
/// phase on the shared session.
enum Phase {
    /// Measurement round `n`.
    Round(usize),
    /// SYN fallback after round `n`'s dual attempt failed.
    Fallback(usize),
    /// The data-transfer baseline.
    Baseline,
    /// One gap-sweep point (µs).
    Gap(u64),
}

impl Phase {
    /// The seed-derivation label the PR 2 protocol used per phase.
    fn seed_label(&self) -> String {
        match self {
            Phase::Round(r) => format!("round{r}"),
            Phase::Fallback(r) => format!("round{r}.fallback"),
            Phase::Baseline => "baseline".to_string(),
            Phase::Gap(g) => format!("gap{g}"),
        }
    }

    /// The telemetry span label this phase's duration is recorded
    /// under. Fallback rounds are measurement work like the rounds
    /// they replace, so both share the `measure` span.
    fn span_label(&self) -> &'static str {
        match self {
            Phase::Round(_) | Phase::Fallback(_) => "measure",
            Phase::Baseline => "baseline",
            Phase::Gap(_) => "gap_sweep",
        }
    }
}

/// The per-host protocol, shared by both modes: technique selection,
/// measurement rounds with technique pinning, SYN fallback and
/// budgeted retries, the baseline gate, and the gap sweep. `measure`
/// runs one phase — session-backed (reusing) or
/// fresh-scenario-per-phase — so the two modes cannot drift apart
/// semantically. `elapsed` reports the host's accumulated simulated
/// time, which [`Budget::deadline`] caps: phases that would start past
/// the deadline are skipped, so no tarpit or blackhole host can spend
/// more than its budget.
fn run_protocol(
    id: u64,
    spec: &HostSpec,
    verdict: Result<IpidVerdict, HostErrorKind>,
    job: &HostJob,
    elapsed: impl Fn() -> Duration,
    mut measure: impl FnMut(TestKind, &Phase, TestConfig) -> Result<Measurement, ProbeError>,
) -> HostReport {
    let cfg = TestConfig::samples(job.samples);
    let (verdict, amen_err) = match verdict {
        Ok(v) => (Some(v), None),
        Err(kind) => (None, Some(kind)),
    };
    let mut report = empty_report(id, spec, verdict);
    if job.amenability_only {
        report.outcome = match amen_err {
            None => HostOutcome::Complete,
            Some(kind) => HostOutcome::Failed { kind },
        };
        return report;
    }

    // Budget accounting: retry backoff is charged against the deadline
    // arithmetically (`backoff << attempt`), so budgets stay
    // deterministic — no wall clock is ever read.
    let budget = job.budget;
    let mut charged = Duration::ZERO;
    let mut deadline_cut = false;

    // Technique selection and measurement rounds. Once a round
    // succeeds the technique is pinned (and fallback disabled): the
    // merged fwd/rev counts must all come from one technique, or the
    // per-technique breakdowns would mislabel mixed samples.
    let primary = primary_kind(job.technique, verdict);
    let mut chosen: Option<TestKind> = None;
    let mut round_err: Option<HostErrorKind> = None;
    for round in 0..job.rounds {
        if elapsed() + charged >= budget.deadline {
            deadline_cut = true;
            report.failures += 1;
            round_err.get_or_insert(HostErrorKind::DeadlineExceeded);
            continue;
        }
        let kind = chosen.unwrap_or(primary);
        // Transfer-primary rounds on a reusing session ask the server
        // for a persistent connection, so rounds 2..n ride round 1's
        // clamped-MSS handshake (`--no-reuse` restores per-round
        // handshakes). Single transfers stay packet-identical — the
        // keep-alive request itself changes the bytes on the wire, so
        // it is only worth asking for when a reuse can follow.
        let round_cfg = cfg.with_keep_alive(
            job.reuse
                && kind == TestKind::DataTransfer
                && (job.rounds > 1 || !job.gaps_us.is_empty()),
        );
        let mut attempt = 0u32;
        let outcome = loop {
            let mut outcome = measure(kind, &Phase::Round(round), round_cfg);
            if outcome.is_err()
                && chosen.is_none()
                && job.technique == TechniqueChoice::Auto
                && kind == TestKind::DualConnection
            {
                // Mid-measurement dual failure (e.g. loss-induced
                // timeout): fall back to the SYN test.
                outcome = measure(TestKind::Syn, &Phase::Fallback(round), cfg);
            }
            match outcome {
                Ok(m) => break Ok(m),
                Err(err) => {
                    // Only transient failures (timeouts) retry, and
                    // each retry's backoff spends deadline.
                    if attempt < budget.max_retries && HostErrorKind::is_transient(&err) {
                        charged += budget.backoff_for(attempt);
                        attempt += 1;
                        if elapsed() + charged < budget.deadline {
                            continue;
                        }
                        deadline_cut = true;
                    }
                    break Err(err);
                }
            }
        };
        match outcome {
            Ok(m) => absorb_round(&mut report, &mut chosen, &m),
            Err(err) => {
                report.failures += 1;
                let classified =
                    HostErrorKind::classify(&err, chosen.is_some() || report.verdict.is_some());
                round_err.get_or_insert(classified);
                // A permanent failure before any success means every
                // remaining round is doomed the same way: count them
                // as failures without burning their simulation time.
                if chosen.is_none() && !HostErrorKind::is_transient(&err) {
                    report.failures += job.rounds - round - 1;
                    break;
                }
            }
        }
    }
    report.reachable = chosen.is_some();

    // Data-transfer baseline of the reverse path (skipped when the
    // primary *is* the transfer test). A redirect-sized object
    // (`HostUnsuitable` → `NonAmenable`) is a host property and never
    // degrades; any other baseline failure — the host died, refused or
    // timed out mid-transfer — marks the run degraded.
    let mut late_err: Option<HostErrorKind> = None;
    if job.baseline && primary != TestKind::DataTransfer {
        if elapsed() + charged >= budget.deadline {
            deadline_cut = true;
        } else {
            match measure(
                TestKind::DataTransfer,
                &Phase::Baseline,
                TestConfig::default(),
            ) {
                Ok(m) => report.baseline_rev = Some(m.rev),
                Err(err) => {
                    let classified =
                        HostErrorKind::classify(&err, chosen.is_some() || report.verdict.is_some());
                    if classified != HostErrorKind::NonAmenable {
                        late_err.get_or_insert(classified);
                    }
                }
            }
        }
    }

    // Optional §IV-C gap sweep. Skipped for unreachable hosts: every
    // sweep point would burn a full doomed measurement attempt per gap.
    if let Some(kind) = chosen {
        for &gap in &job.gaps_us {
            if elapsed() + charged >= budget.deadline {
                deadline_cut = true;
                break;
            }
            let gcfg = cfg
                .with_gap(Duration::from_micros(gap))
                .with_keep_alive(job.reuse && kind == TestKind::DataTransfer);
            match measure(kind, &Phase::Gap(gap), gcfg) {
                Ok(m) => report.gap_points.push((gap, m.fwd)),
                Err(err) => {
                    let classified = HostErrorKind::classify(&err, true);
                    if classified != HostErrorKind::NonAmenable {
                        late_err.get_or_insert(classified);
                    }
                }
            }
        }
    }

    report.outcome = if !report.reachable {
        // The amenability probe's classification is the most specific
        // one for a host that never measured (it saw the raw handshake
        // failure: refused vs timed out).
        HostOutcome::Failed {
            kind: amen_err
                .or(round_err)
                .unwrap_or(HostErrorKind::DeadlineExceeded),
        }
    } else if report.failures > 0 || amen_err.is_some() || late_err.is_some() || deadline_cut {
        HostOutcome::Degraded {
            kind: round_err
                .or(late_err)
                .or(amen_err)
                .unwrap_or(if deadline_cut {
                    HostErrorKind::DeadlineExceeded
                } else {
                    HostErrorKind::Partial
                }),
        }
    } else {
        HostOutcome::Complete
    };
    report
}

/// Run the full pipeline against host `id` with a throwaway
/// [`ScenarioPool`] — the convenience form of [`survey_host_pooled`]
/// for tests and one-off callers.
pub fn survey_host(id: u64, spec: &HostSpec, host_seed: u64, job: &HostJob) -> HostReport {
    survey_host_pooled(id, spec, host_seed, job, &mut ScenarioPool::new())
}

/// Run the full pipeline against host `id`. `host_seed` must already be
/// host-specific (the engine derives it from the master seed and id);
/// every scenario in here derives a labeled child seed from it, so the
/// pipeline is a pure function of `(spec, host_seed, job)` — the pool
/// only recycles allocations (campaign workers keep one each) and
/// never changes a result, which the pooled-vs-fresh determinism
/// tests assert byte for byte.
pub fn survey_host_pooled(
    id: u64,
    spec: &HostSpec,
    host_seed: u64,
    job: &HostJob,
    pool: &mut ScenarioPool,
) -> HostReport {
    survey_host_traced(id, spec, host_seed, job, pool, &mut WorkerTelemetry::new())
}

/// [`survey_host_pooled`] with a telemetry sink: phase span durations
/// (`host`, `amenability`, `measure`, `baseline`, `gap_sweep`) and
/// pipeline counters (`netsim.events`, `netsim.calendar_overflow`,
/// `pool.hits`, `pool.misses`) are folded into `tel` according to
/// [`HostJob::telemetry`]. With [`TelemetryMode::Off`] (the default)
/// nothing is recorded and no clock is read — `tel` stays untouched —
/// and in every mode the returned report is byte-identical to the
/// untraced run (telemetry observes; it never participates).
pub fn survey_host_traced(
    id: u64,
    spec: &HostSpec,
    host_seed: u64,
    job: &HostJob,
    pool: &mut ScenarioPool,
    tel: &mut WorkerTelemetry,
) -> HostReport {
    let mode = job.telemetry;
    let events_before = pool.events_absorbed();
    let overflow_before = pool.overflow_absorbed();
    let hits_before = pool.recycled();
    let misses_before = pool.fresh_builds();
    let host_sw = mode.start();
    let mut report = if job.reuse {
        survey_host_reusing(id, spec, host_seed, job, pool, tel)
    } else {
        survey_host_fresh(id, spec, host_seed, job, pool, tel)
    };
    report.events = pool.events_absorbed() - events_before;
    if mode.is_enabled() {
        tel.span("host", mode, host_sw);
        tel.count("netsim.events", report.events);
        tel.count(
            "netsim.calendar_overflow",
            pool.overflow_absorbed() - overflow_before,
        );
        tel.count("pool.hits", pool.recycled() - hits_before);
        tel.count("pool.misses", pool.fresh_builds() - misses_before);
    }
    report
}

/// One scenario, one connection-caching session, every phase on it:
/// the amenability probe's two connections and the validation verdict
/// stay on the session for the measurement rounds, baseline and gap
/// sweep.
fn survey_host_reusing(
    id: u64,
    spec: &HostSpec,
    host_seed: u64,
    job: &HostJob,
    pool: &mut ScenarioPool,
    tel: &mut WorkerTelemetry,
) -> HostReport {
    let mode = job.telemetry;
    let mut sc = pool.internet_host(spec, simrng::derive_seed(host_seed, "session"));
    let report = {
        let mut session = Session::new(&mut sc.prober, sc.target, 80)
            .with_reuse(true)
            .with_budget(job.budget);
        let sw = mode.start();
        let verdict = technique(TestKind::DualConnection, TestConfig::samples(5))
            .probe_amenability(&mut session)
            .map_err(|e| HostErrorKind::classify(&e, false));
        tel.span("amenability", mode, sw);
        // Elapsed simulated time, updated after every phase: the one
        // shared session's clock covers amenability and all phases.
        let spent = Cell::new(Duration::from_nanos(session.prober().now().as_nanos()));
        run_protocol(
            id,
            spec,
            verdict,
            job,
            || spent.get(),
            |kind, phase, cfg| {
                let sw = mode.start();
                let outcome = Measurer::new(kind).with_config(cfg).run(&mut session);
                spent.set(Duration::from_nanos(session.prober().now().as_nanos()));
                tel.span(phase.span_label(), mode, sw);
                outcome
            },
        )
        // Session drops here: cached connections close politely while
        // the scenario is still alive, so teardown traffic is counted.
    };
    pool.recycle(sc);
    report
}

/// The PR 2 protocol: a fresh scenario (own labeled seed, own
/// handshakes) per phase. Kept selectable for apples-to-apples
/// comparisons — the campaign bench runs both modes.
fn survey_host_fresh(
    id: u64,
    spec: &HostSpec,
    host_seed: u64,
    job: &HostJob,
    pool: &mut ScenarioPool,
    tel: &mut WorkerTelemetry,
) -> HostReport {
    let mode = job.telemetry;
    let budget = job.budget;
    let (verdict, amen_elapsed) = {
        let sw = mode.start();
        let mut sc = pool.internet_host(spec, simrng::derive_seed(host_seed, "amenability"));
        let verdict = {
            let mut session = Session::new(&mut sc.prober, sc.target, 80).with_budget(budget);
            technique(TestKind::DualConnection, TestConfig::samples(5))
                .probe_amenability(&mut session)
                .map_err(|e| HostErrorKind::classify(&e, false))
        };
        let spent = Duration::from_nanos(sc.prober.now().as_nanos());
        pool.recycle(sc);
        tel.span("amenability", mode, sw);
        (verdict, spent)
    };
    // Each phase runs its own scenario whose clock starts at zero, so
    // the host's accumulated simulated time is summed across phases
    // (seeded with the amenability probe's) and each phase's session
    // gets whatever deadline remains.
    let spent = Cell::new(amen_elapsed);
    run_protocol(
        id,
        spec,
        verdict,
        job,
        || spent.get(),
        |kind, phase, cfg| {
            let sw = mode.start();
            let seed = simrng::derive_seed(host_seed, &phase.seed_label());
            let mut sc = pool.internet_host(spec, seed);
            let outcome = {
                let remaining = Budget {
                    deadline: budget.deadline.saturating_sub(spent.get()),
                    ..budget
                };
                let mut session =
                    Session::new(&mut sc.prober, sc.target, 80).with_budget(remaining);
                Measurer::new(kind).with_config(cfg).run(&mut session)
            };
            spent.set(spent.get() + Duration::from_nanos(sc.prober.now().as_nanos()));
            pool.recycle(sc);
            tel.span(phase.span_label(), mode, sw);
            outcome
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use reorder_tcpstack::HostPersonality;

    #[test]
    fn parse_is_exhaustive() -> Result<(), String> {
        for name in TechniqueChoice::ACCEPTED {
            let parsed =
                TechniqueChoice::parse(name).map_err(|e| format!("`{name}` must parse: {e}"))?;
            assert_eq!(parsed.to_string(), name, "display round-trips");
        }
        let err = TechniqueChoice::parse("bogus").unwrap_err();
        for name in TechniqueChoice::ACCEPTED {
            assert!(err.contains(name), "error must list `{name}`: {err}");
        }
        // Both single-connection variants are explicitly addressable.
        assert_eq!(
            TechniqueChoice::parse("single").unwrap(),
            TechniqueChoice::Fixed(TestKind::SingleConnection)
        );
        assert_eq!(
            TechniqueChoice::parse("single-rev").unwrap(),
            TechniqueChoice::Fixed(TestKind::SingleConnectionReversed)
        );
        Ok(())
    }

    #[test]
    fn accepted_set_is_auto_plus_every_kind() {
        let mut expected = vec!["auto"];
        expected.extend(TestKind::ACCEPTED);
        assert_eq!(TechniqueChoice::ACCEPTED.to_vec(), expected);
    }

    #[test]
    fn amenable_host_uses_dual() {
        let spec = HostSpec::clean("dual-ok", HostPersonality::freebsd4());
        let r = survey_host(0, &spec, 101, &HostJob::default());
        assert_eq!(r.verdict, Some(IpidVerdict::Amenable));
        assert_eq!(r.technique, "dual");
        assert!(r.reachable);
        assert!(r.fwd.total > 0);
        assert!(r.baseline_rev.is_some(), "12KiB object supports baseline");
    }

    #[test]
    fn random_ipid_host_falls_back_to_syn() {
        let spec = HostSpec::clean("syn-fallback", HostPersonality::openbsd3());
        let r = survey_host(1, &spec, 202, &HostJob::default());
        assert_eq!(r.verdict, Some(IpidVerdict::NonMonotonic));
        assert_eq!(r.technique, "syn");
        assert!(r.reachable);
        assert!(r.fwd.total > 0);
    }

    #[test]
    fn multi_round_merges_one_technique() {
        let spec = HostSpec {
            fwd_reorder: 0.1,
            ..HostSpec::clean("rounds", HostPersonality::freebsd4())
        };
        let job = HostJob {
            samples: 6,
            rounds: 3,
            baseline: false,
            ..HostJob::default()
        };
        let r = survey_host(9, &spec, 808, &job);
        assert_eq!(r.technique, "dual");
        assert_eq!(r.failures, 0);
        // All three rounds' samples merged under the pinned technique.
        assert!(r.fwd.total >= 15, "merged totals, got {:?}", r.fwd);
    }

    #[test]
    fn amenability_only_skips_measurement() {
        let spec = HostSpec::clean("probe-only", HostPersonality::linux24());
        let job = HostJob {
            amenability_only: true,
            ..HostJob::default()
        };
        let r = survey_host(2, &spec, 303, &job);
        assert_eq!(r.verdict, Some(IpidVerdict::ConstantZero));
        assert_eq!(r.technique, "none");
        assert_eq!(r.fwd.total, 0);
        assert!(r.baseline_rev.is_none());
    }

    #[test]
    fn small_object_defeats_baseline_not_measurement() {
        let spec = HostSpec {
            object_size: 256,
            ..HostSpec::clean("redirect", HostPersonality::freebsd4())
        };
        let r = survey_host(3, &spec, 404, &HostJob::default());
        assert!(r.reachable);
        assert!(r.baseline_rev.is_none(), "redirect-sized object");
    }

    #[test]
    fn gap_sweep_recorded() {
        let spec = HostSpec::clean("gaps", HostPersonality::freebsd4());
        let job = HostJob {
            samples: 5,
            gaps_us: vec![0, 100],
            ..HostJob::default()
        };
        let r = survey_host(4, &spec, 505, &job);
        assert_eq!(r.gap_points.len(), 2);
        assert_eq!(r.gap_points[0].0, 0);
        assert_eq!(r.gap_points[1].0, 100);
    }

    #[test]
    fn pipeline_is_deterministic() {
        for reuse in [true, false] {
            let m = crate::population::PopulationModel::default();
            let spec = m.host(7, 42);
            let job = HostJob {
                reuse,
                ..HostJob::default()
            };
            let a = survey_host(7, &spec, 606, &job);
            let b = survey_host(7, &spec, 606, &job);
            assert_eq!(a.verdict, b.verdict);
            assert_eq!(a.technique, b.technique);
            assert_eq!(a.fwd, b.fwd);
            assert_eq!(a.rev, b.rev);
            assert_eq!(a.baseline_rev, b.baseline_rev);
        }
    }

    #[test]
    fn reuse_and_fresh_modes_agree_on_protocol_outcomes() {
        // Reuse changes how many handshakes happen, never which
        // technique measures a host or how its verdict reads.
        for (seed, p) in [
            (11u64, HostPersonality::freebsd4()),
            (12, HostPersonality::openbsd3()),
            (13, HostPersonality::linux24()),
        ] {
            let spec = HostSpec {
                fwd_reorder: 0.15,
                ..HostSpec::clean("mode-cmp", p)
            };
            let reusing = survey_host(0, &spec, seed, &HostJob::default());
            let fresh = survey_host(
                0,
                &spec,
                seed,
                &HostJob {
                    reuse: false,
                    ..HostJob::default()
                },
            );
            assert_eq!(reusing.verdict, fresh.verdict, "{}", spec.personality.name);
            assert_eq!(
                reusing.technique, fresh.technique,
                "{}",
                spec.personality.name
            );
            assert_eq!(reusing.reachable, fresh.reachable);
            // Same sample budget in both modes.
            assert_eq!(reusing.fwd.total, fresh.fwd.total);
        }
    }

    #[test]
    fn transfer_rounds_keep_alive_under_reuse() {
        // Transfer-primary, multi-round: with reuse the keep-alive
        // connection spares rounds 2..n their handshakes (and the
        // server its FIN/handshake churn), which shows up as strictly
        // fewer simulator events for the same sample budget. With
        // --no-reuse the per-round handshakes come back.
        let spec = HostSpec::clean("ka", HostPersonality::freebsd4());
        let job = |reuse| HostJob {
            technique: TechniqueChoice::Fixed(TestKind::DataTransfer),
            rounds: 3,
            baseline: false,
            reuse,
            ..HostJob::default()
        };
        let reusing = survey_host(0, &spec, 4242, &job(true));
        let fresh = survey_host(0, &spec, 4242, &job(false));
        assert_eq!(reusing.technique, "transfer");
        assert_eq!(fresh.technique, "transfer");
        assert_eq!(reusing.failures, 0);
        // Same protocol outcome, same per-round sample counts.
        assert_eq!(reusing.rev.total, fresh.rev.total);
        assert!(
            reusing.events < fresh.events,
            "keep-alive must remove wire traffic: {} vs {}",
            reusing.events,
            fresh.events
        );
    }

    #[test]
    fn forced_single_runs_the_in_order_variant() {
        // The historical inconsistency: "single" used to silently run
        // the reversed variant. Now each variant is explicit.
        let spec = HostSpec::clean("single-explicit", HostPersonality::freebsd4());
        let job = HostJob {
            technique: TechniqueChoice::Fixed(TestKind::SingleConnection),
            baseline: false,
            ..HostJob::default()
        };
        let r = survey_host(5, &spec, 707, &job);
        assert_eq!(r.technique, "single");
        let job = HostJob {
            technique: TechniqueChoice::Fixed(TestKind::SingleConnectionReversed),
            baseline: false,
            ..HostJob::default()
        };
        let r = survey_host(6, &spec, 708, &job);
        assert_eq!(r.technique, "single-rev");
    }

    /// The hostile-host survival property: every fault class crossed
    /// with every technique choice and both session modes terminates,
    /// produces a classified outcome, and does so deterministically.
    /// Loss-only hostility may still complete (45% loss is survivable
    /// with enough retransmission luck); the four hard faults never do.
    #[test]
    fn every_fault_class_terminates_classified() {
        use reorder_core::scenario::FaultClass;
        let faults = [
            FaultClass::Blackhole,
            FaultClass::RstReject,
            FaultClass::Tarpit {
                delay: Duration::from_secs(30),
            },
            FaultClass::DeadAfter { packets: 60 },
            FaultClass::HeavyLoss { rate: 0.45 },
        ];
        let techniques = [
            TechniqueChoice::Auto,
            TechniqueChoice::Fixed(TestKind::DualConnection),
            TechniqueChoice::Fixed(TestKind::Syn),
            TechniqueChoice::Fixed(TestKind::DataTransfer),
        ];
        let budget = Budget {
            deadline: Duration::from_secs(45),
            max_retries: 1,
            ..Budget::default()
        };
        for (fi, &fault) in faults.iter().enumerate() {
            for (ti, &technique) in techniques.iter().enumerate() {
                for reuse in [true, false] {
                    let spec = HostSpec {
                        fault: Some(fault),
                        ..HostSpec::clean("hostile", HostPersonality::freebsd4())
                    };
                    let job = HostJob {
                        samples: 4,
                        baseline: false,
                        technique,
                        reuse,
                        budget,
                        ..HostJob::default()
                    };
                    let seed = 9000 + (fi * 10 + ti) as u64;
                    let r = survey_host(0, &spec, seed, &job);
                    let again = survey_host(0, &spec, seed, &job);
                    let label = format!("{} x {technique} (reuse={reuse})", fault.label());
                    assert_eq!(r.outcome, again.outcome, "{label} must be deterministic");
                    assert_eq!(r.fwd, again.fwd, "{label} must be deterministic");
                    // DeadAfter and HeavyLoss are survivable-by-design
                    // (a short enough run fits before death; 45% loss
                    // can get lucky) — for them termination plus
                    // deterministic classification is the property.
                    // The three always-hostile classes must never read
                    // as complete.
                    if matches!(
                        fault,
                        FaultClass::Blackhole | FaultClass::RstReject | FaultClass::Tarpit { .. }
                    ) {
                        assert_ne!(
                            r.outcome,
                            HostOutcome::Complete,
                            "{label} must be classified as degraded or failed"
                        );
                        let kind = r.outcome.kind().expect("non-complete outcome has a kind");
                        assert!(!kind.label().is_empty());
                        assert!(
                            r.failures > 0 || !r.reachable || r.baseline_rev.is_none(),
                            "{label}: a hard fault must cost something"
                        );
                    }
                }
            }
        }
    }

    /// The chaos preset's mid-measurement death: `DeadAfter { packets:
    /// 50 }` outlives the amenability probe, dies partway through the
    /// dual measurement — classified died-mid-measurement, with the
    /// partial results kept.
    #[test]
    fn dead_after_fifty_packets_degrades_as_died_mid_measurement() {
        use reorder_core::scenario::FaultClass;
        let spec = HostSpec {
            fault: Some(FaultClass::DeadAfter { packets: 50 }),
            ..HostSpec::clean("walking-dead", HostPersonality::freebsd4())
        };
        let r = survey_host(0, &spec, 2026, &HostJob::default());
        assert_eq!(r.verdict, Some(IpidVerdict::Amenable), "outlives the probe");
        assert_eq!(r.technique, "dual");
        assert!(r.reachable, "partial results are kept");
        assert!(r.fwd.total > 0);
        assert_eq!(
            r.outcome,
            HostOutcome::Degraded {
                kind: HostErrorKind::DiedMidMeasurement
            }
        );
        assert!(r.baseline_rev.is_none(), "died before the baseline");
    }

    /// An exhausted budget classifies immediately — the deadline binds
    /// before any probe traffic, for hostile and cooperative hosts
    /// alike, so no fault class can stretch a host past its budget.
    #[test]
    fn zero_deadline_fails_every_host_as_deadline_exceeded() {
        use reorder_core::scenario::FaultClass;
        let job = HostJob {
            budget: Budget {
                deadline: Duration::ZERO,
                ..Budget::default()
            },
            ..HostJob::default()
        };
        for fault in [None, Some(FaultClass::Blackhole)] {
            for reuse in [true, false] {
                let spec = HostSpec {
                    fault,
                    ..HostSpec::clean("broke", HostPersonality::freebsd4())
                };
                let r = survey_host(
                    0,
                    &spec,
                    1234,
                    &HostJob {
                        reuse,
                        ..job.clone()
                    },
                );
                assert_eq!(
                    r.outcome,
                    HostOutcome::Failed {
                        kind: HostErrorKind::DeadlineExceeded
                    },
                    "fault={fault:?} reuse={reuse}"
                );
                assert!(!r.reachable);
                assert!(r.failures > 0);
            }
        }
    }
}
