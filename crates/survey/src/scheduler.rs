//! Layer 2: the sharded, work-stealing scheduler.
//!
//! Hosts are dealt round-robin across one shard (a deque) per worker.
//! Each worker drains its own shard from the front; when empty it
//! steals from the *back* of the other shards, so a shard that drew
//! several slow scenarios (wide load balancers, long transfers) is
//! relieved by idle workers instead of straggling the campaign.
//!
//! Simulations are single-threaded and `!Send`, so the job closure
//! receives only the host *index* and builds everything it needs
//! locally — the same discipline as `reorder_bench::parallel_map`, plus
//! stealing and streaming consumption.
//!
//! Two consumption modes:
//!
//! * [`run_sharded`] feeds results to a single consumer **in job-index
//!   order** regardless of completion order, via a reorder buffer on
//!   the collecting thread — required when an ordered sink (JSONL,
//!   per-host tables) is attached.
//! * [`run_folded`] keeps results on the worker that produced them:
//!   each worker folds its results into a local state and the states
//!   come back in worker-index order, with no channel, no reorder
//!   buffer, and no single consuming thread. This is the funnel-free
//!   path for summary-only campaigns — correct only when the fold is
//!   order-independent (the aggregation layer's commutative-monoid
//!   contract).

use std::collections::{BTreeMap, VecDeque};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;

/// Counters the pool reports after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads used.
    pub workers: usize,
    /// Jobs executed after being stolen from another worker's shard.
    pub steals: u64,
    /// True when `consume` broke the run off early; trailing jobs were
    /// skipped or discarded.
    pub aborted: bool,
}

/// Resolve a requested worker count: 0 means "all available cores".
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Run `jobs` indices through per-worker job closures on `workers`
/// threads and feed every result to `consume` **in index order**.
///
/// `mk_worker` runs once on each worker thread and returns that
/// worker's job closure — the hook for per-worker mutable state such
/// as a recycled [`reorder_core::scenario::ScenarioPool`] (simulations
/// are `!Send`, so worker-local state must be born on the worker).
/// The closure must stay a pure function of the index — state may
/// only affect *how fast* a result is produced, never *what* it is —
/// or the order-independence guarantee means nothing; the campaign
/// determinism suite asserts this by comparing pooled, fresh, sharded
/// and differently-parallel runs byte for byte.
///
/// `consume` may return [`ControlFlow::Break`] to abort the campaign
/// early (e.g. a failed sink): queued shards are drained, the workers
/// stop, and remaining results are discarded. Returns pool counters.
pub fn run_sharded<R, F, J, C>(
    jobs: usize,
    workers: usize,
    mk_worker: F,
    mut consume: C,
) -> PoolStats
where
    R: Send,
    F: Fn() -> J + Sync,
    J: FnMut(usize) -> R,
    C: FnMut(usize, R) -> ControlFlow<()>,
{
    let workers = resolve_workers(workers).min(jobs.max(1));
    // Deal round-robin: shard w holds indices ≡ w (mod workers).
    let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
    for i in 0..jobs {
        deques[i % workers].push_back(i);
    }
    let shards: Vec<Mutex<VecDeque<usize>>> = deques.into_iter().map(Mutex::new).collect();
    let steals = AtomicU64::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let aborted = thread::scope(|s| {
        for w in 0..workers {
            let tx = tx.clone();
            let shards = &shards;
            let steals = &steals;
            let mk_worker = &mk_worker;
            s.spawn(move || {
                let mut job = mk_worker();
                loop {
                    // Own shard first (front), then steal (back).
                    let mut next = shards[w].lock().expect("shard poisoned").pop_front();
                    if next.is_none() {
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            let got = shards[victim].lock().expect("shard poisoned").pop_back();
                            if got.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                next = got;
                                break;
                            }
                        }
                    }
                    let Some(i) = next else { break };
                    if tx.send((i, job(i))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);

        // Streaming, order-restoring consumption: results arrive in
        // completion order; release them to `consume` in index order.
        // The pending buffer is bounded by the in-flight disorder
        // window — O(jobs) worst case, O(workers) typical.
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        let mut aborted = false;
        'recv: for (i, r) in &rx {
            pending.insert(i, r);
            while let Some(r) = pending.remove(&next) {
                let flow = consume(next, r);
                next += 1;
                if flow.is_break() {
                    aborted = true;
                    break 'recv;
                }
            }
        }
        if aborted {
            // Stop the workers promptly: drain the queued shards (so
            // nothing further is popped) and close the channel (so
            // in-flight sends fail and the workers exit).
            for shard in &shards {
                shard.lock().expect("shard poisoned").clear();
            }
            drop(rx);
        } else {
            assert!(pending.is_empty(), "worker died mid-campaign");
            assert_eq!(next, jobs, "missing results");
        }
        aborted
    });

    PoolStats {
        workers,
        steals: steals.load(Ordering::Relaxed),
        aborted,
    }
}

/// Run `jobs` indices on `workers` threads, folding each result into a
/// **worker-local** state — the funnel-free alternative to
/// [`run_sharded`] for consumers that don't need ordered results.
///
/// `mk_worker` runs once on each worker thread and returns `(local,
/// state)`: `local` is worker-local scratch that never leaves the
/// thread (e.g. a `!Send` simulator pool), `state` is the fold
/// accumulator handed back at the end. `step` executes job `i`,
/// folding its result into `state`. States are returned in
/// worker-index order.
///
/// Work stealing makes the job→worker assignment nondeterministic, so
/// a caller needing deterministic totals must fold with an
/// order-independent (commutative, associative) operation —
/// `reorder-survey`'s aggregation layer is built on exactly that
/// contract, and the campaign determinism suite asserts it against
/// the ordered path byte for byte.
pub fn run_folded<L, S, F, G>(
    jobs: usize,
    workers: usize,
    mk_worker: F,
    step: G,
) -> (Vec<S>, PoolStats)
where
    S: Send,
    F: Fn() -> (L, S) + Sync,
    G: Fn(&mut L, &mut S, usize) + Sync,
{
    let workers = resolve_workers(workers).min(jobs.max(1));
    let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
    for i in 0..jobs {
        deques[i % workers].push_back(i);
    }
    let shards: Vec<Mutex<VecDeque<usize>>> = deques.into_iter().map(Mutex::new).collect();
    let steals = AtomicU64::new(0);
    let states: Vec<Mutex<Option<S>>> = (0..workers).map(|_| Mutex::new(None)).collect();

    thread::scope(|s| {
        for w in 0..workers {
            let shards = &shards;
            let steals = &steals;
            let states = &states;
            let mk_worker = &mk_worker;
            let step = &step;
            s.spawn(move || {
                let (mut local, mut state) = mk_worker();
                loop {
                    // Own shard first (front), then steal (back) — the
                    // same discipline as `run_sharded`.
                    let mut next = shards[w].lock().expect("shard poisoned").pop_front();
                    if next.is_none() {
                        for v in 1..workers {
                            let victim = (w + v) % workers;
                            let got = shards[victim].lock().expect("shard poisoned").pop_back();
                            if got.is_some() {
                                steals.fetch_add(1, Ordering::Relaxed);
                                next = got;
                                break;
                            }
                        }
                    }
                    let Some(i) = next else { break };
                    step(&mut local, &mut state, i);
                }
                *states[w].lock().expect("state poisoned") = Some(state);
            });
        }
    });

    let states = states
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("state poisoned")
                .expect("worker died before folding its state")
        })
        .collect();
    (
        states,
        PoolStats {
            workers,
            steals: steals.load(Ordering::Relaxed),
            aborted: false,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn consumes_every_job_in_order() {
        for workers in [1, 2, 4, 7] {
            let mut seen = Vec::new();
            let stats = run_sharded(
                100,
                workers,
                || |i| i * 3,
                |i, r| {
                    seen.push((i, r));
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(seen.len(), 100);
            assert!(seen
                .iter()
                .enumerate()
                .all(|(k, &(i, r))| k == i && r == i * 3));
            assert!(stats.workers <= workers.max(1));
            assert!(!stats.aborted);
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let stats = run_sharded(0, 4, || |i| i, |_, _: usize| panic!("no jobs to consume"));
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn workers_cap_at_job_count() {
        let stats = run_sharded(2, 16, || |i| i, |_, _| ControlFlow::Continue(()));
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn stealing_relieves_a_straggling_shard() {
        // With round-robin dealing over 2 workers, shard 0 gets all the
        // slow jobs (even indices). Worker 1 must steal some of them.
        let stats = run_sharded(
            40,
            2,
            || {
                |i| {
                    if i % 2 == 0 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    i
                }
            },
            |_, _| ControlFlow::Continue(()),
        );
        if stats.workers == 2 {
            assert!(stats.steals > 0, "expected steals, got {stats:?}");
        }
    }

    #[test]
    fn break_aborts_promptly() {
        // Break on the third result: the pool must stop without
        // consuming the rest, and report the abort.
        let mut consumed = 0usize;
        let stats = run_sharded(
            500,
            4,
            || {
                |i| {
                    std::thread::sleep(Duration::from_micros(200));
                    i
                }
            },
            |_, _| {
                consumed += 1;
                if consumed == 3 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert!(stats.aborted);
        assert_eq!(consumed, 3);
    }

    #[test]
    fn resolve_workers_auto() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    #[test]
    fn folded_covers_every_job_exactly_once() {
        for workers in [1, 2, 4, 7] {
            let (states, stats) = run_folded(
                100,
                workers,
                || ((), Vec::new()),
                |_, seen: &mut Vec<usize>, i| seen.push(i),
            );
            assert_eq!(states.len(), stats.workers);
            let mut all: Vec<usize> = states.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
            assert!(!stats.aborted);
        }
    }

    #[test]
    fn folded_zero_jobs_returns_initial_states() {
        let (states, stats) = run_folded(0, 4, || ((), 7u64), |_, _, _| panic!("no jobs"));
        assert_eq!(states, vec![7]);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn folded_order_independent_sum_matches_serial() {
        // An order-independent fold (integer sum) must be invariant
        // across worker counts — the aggregation contract in miniature.
        let serial: u64 = (0..500u64).map(|i| i * i).sum();
        for workers in [1, 3, 8] {
            let (states, _) = run_folded(
                500,
                workers,
                || ((), 0u64),
                |_, acc, i| *acc += (i as u64) * (i as u64),
            );
            assert_eq!(states.into_iter().sum::<u64>(), serial);
        }
    }

    #[test]
    fn folded_steals_relieve_stragglers() {
        let (_, stats) = run_folded(
            40,
            2,
            || ((), ()),
            |_, _, i| {
                if i % 2 == 0 {
                    std::thread::sleep(Duration::from_millis(2));
                }
            },
        );
        if stats.workers == 2 {
            assert!(stats.steals > 0, "expected steals, got {stats:?}");
        }
    }
}
