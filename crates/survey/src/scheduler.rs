//! Layer 2: the sharded, work-stealing scheduler.
//!
//! Hosts are dealt round-robin across one shard (a deque) per worker.
//! Each worker drains its own shard from the front; when empty it
//! steals from the *back* of the other shards, so a shard that drew
//! several slow scenarios (wide load balancers, long transfers) is
//! relieved by idle workers instead of straggling the campaign.
//!
//! Simulations are single-threaded and `!Send`, so the job closure
//! receives only the host *index* and builds everything it needs
//! locally — the same discipline as `reorder_bench::parallel_map`, plus
//! stealing and streaming consumption.
//!
//! Two consumption modes:
//!
//! * [`run_sharded`] feeds results to a single consumer **in job-index
//!   order** regardless of completion order, via a reorder buffer on
//!   the collecting thread — required when an ordered sink (JSONL,
//!   per-host tables) is attached.
//! * [`run_folded`] keeps results on the worker that produced them:
//!   each worker folds its results into a local state and the states
//!   come back in worker-index order, with no channel, no reorder
//!   buffer, and no single consuming thread. This is the funnel-free
//!   path for summary-only campaigns — correct only when the fold is
//!   order-independent (the aggregation layer's commutative-monoid
//!   contract).
//!
//! Both modes report per-worker counters ([`WorkerStats`]: tasks,
//! steal attempts/successes, busy vs idle nanoseconds) and accept a
//! [`RunProbe`] — the live observation surface a progress heartbeat
//! reads while the run is in flight. Timing is opt-in via the probe:
//! an untimed run never reads a clock in the worker loop.

use std::collections::{BTreeMap, VecDeque};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex};
use std::thread;
use std::time::Instant;

/// One worker's scheduler counters for a finished run. Integer state:
/// summing any partition of workers gives the same totals, matching
/// the telemetry layer's mergeable-monoid contract.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerStats {
    /// Jobs this worker executed (own shard + stolen).
    pub tasks: u64,
    /// Steal probes: locked peeks at another worker's shard, whether
    /// or not a job came back.
    pub steal_attempts: u64,
    /// Jobs executed after being stolen from another worker's shard.
    pub steals: u64,
    /// Nanoseconds spent executing jobs (zero when the run's
    /// [`RunProbe`] was untimed).
    pub busy_ns: u64,
    /// Wall nanoseconds minus busy nanoseconds: lock waits, steal
    /// probes and channel sends (zero when untimed).
    pub idle_ns: u64,
    /// Worker-thread wall nanoseconds, spawn to exit (zero when
    /// untimed).
    pub wall_ns: u64,
}

/// Counters the pool reports after a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads used.
    pub workers: usize,
    /// Jobs executed after being stolen from another worker's shard
    /// (the sum of [`WorkerStats::steals`]).
    pub steals: u64,
    /// True when `consume` broke the run off early; trailing jobs were
    /// skipped or discarded.
    pub aborted: bool,
    /// Per-worker counters, in worker-index order.
    pub per_worker: Vec<WorkerStats>,
}

/// Live observation surface for an in-flight run, shared between the
/// workers and whoever watches them (the `--progress` heartbeat).
/// Workers bump [`RunProbe::done`] after every job; a *timed* probe
/// additionally makes each worker read the clock around every job,
/// publish its running busy time, and report busy/idle/wall splits in
/// its [`WorkerStats`]. [`RunProbe::disabled`] costs one relaxed
/// atomic increment per job and never a syscall.
#[derive(Debug)]
pub struct RunProbe {
    timed: bool,
    /// Jobs completed so far, across all workers.
    pub done: AtomicU64,
    busy_ns: Vec<AtomicU64>,
}

impl RunProbe {
    /// A probe for up to `workers` workers. `timed` turns on per-job
    /// clock reads (busy/idle accounting and live utilization).
    pub fn new(timed: bool, workers: usize) -> RunProbe {
        RunProbe {
            timed,
            done: AtomicU64::new(0),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// The no-observation probe: untimed, no per-worker slots.
    pub fn disabled() -> RunProbe {
        RunProbe::new(false, 0)
    }

    /// Whether workers time their jobs.
    pub fn timed(&self) -> bool {
        self.timed
    }

    /// Worker `w`'s published busy nanoseconds so far (0 when untimed
    /// or out of range).
    pub fn busy_ns(&self, w: usize) -> u64 {
        self.busy_ns
            .get(w)
            .map(|a| a.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// Per-worker slots allocated.
    pub fn slots(&self) -> usize {
        self.busy_ns.len()
    }

    fn publish_busy(&self, w: usize, ns: u64) {
        if let Some(slot) = self.busy_ns.get(w) {
            slot.store(ns, Ordering::Relaxed);
        }
    }
}

/// Resolve a requested worker count: 0 means "all available cores".
pub fn resolve_workers(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    }
}

/// Pop the next job index for worker `w`: own shard first (front),
/// then steal from the other shards (back), counting probes and
/// successes into `st`.
fn next_job(
    w: usize,
    workers: usize,
    shards: &[Mutex<VecDeque<usize>>],
    st: &mut WorkerStats,
) -> Option<usize> {
    if let Some(i) = shards[w].lock().expect("shard poisoned").pop_front() {
        return Some(i);
    }
    for v in 1..workers {
        let victim = (w + v) % workers;
        st.steal_attempts += 1;
        let got = shards[victim].lock().expect("shard poisoned").pop_back();
        if got.is_some() {
            st.steals += 1;
            return got;
        }
    }
    None
}

/// Deal job indices round-robin: shard w holds indices ≡ w (mod workers).
fn deal_shards(jobs: usize, workers: usize) -> Vec<Mutex<VecDeque<usize>>> {
    let mut deques: Vec<VecDeque<usize>> = vec![VecDeque::new(); workers];
    for i in 0..jobs {
        deques[i % workers].push_back(i);
    }
    deques.into_iter().map(Mutex::new).collect()
}

fn collect_stats(workers: usize, aborted: bool, wstats: Vec<Mutex<WorkerStats>>) -> PoolStats {
    let per_worker: Vec<WorkerStats> = wstats
        .into_iter()
        .map(|m| m.into_inner().expect("stats poisoned"))
        .collect();
    PoolStats {
        workers,
        steals: per_worker.iter().map(|s| s.steals).sum(),
        aborted,
        per_worker,
    }
}

/// Run `jobs` indices through per-worker job closures on `workers`
/// threads and feed every result to `consume` **in index order** —
/// see [`run_sharded_probed`] for the full contract. This convenience
/// form attaches a [`RunProbe::disabled`].
pub fn run_sharded<R, F, J, C>(jobs: usize, workers: usize, mk_worker: F, consume: C) -> PoolStats
where
    R: Send,
    F: Fn(usize) -> J + Sync,
    J: FnMut(usize) -> R,
    C: FnMut(usize, R) -> ControlFlow<()>,
{
    run_sharded_probed(jobs, workers, mk_worker, consume, &RunProbe::disabled())
}

/// Run `jobs` indices through per-worker job closures on `workers`
/// threads and feed every result to `consume` **in index order**.
///
/// `mk_worker` runs once on each worker thread — receiving the worker
/// index — and returns that worker's job closure — the hook for
/// per-worker mutable state such as a recycled
/// [`reorder_core::scenario::ScenarioPool`] (simulations are `!Send`,
/// so worker-local state must be born on the worker). The closure must
/// stay a pure function of the index — state may only affect *how
/// fast* a result is produced, never *what* it is — or the
/// order-independence guarantee means nothing; the campaign
/// determinism suite asserts this by comparing pooled, fresh, sharded
/// and differently-parallel runs byte for byte.
///
/// `consume` may return [`ControlFlow::Break`] to abort the campaign
/// early (e.g. a failed sink): queued shards are drained, the workers
/// stop, and remaining results are discarded. `probe` is the live
/// observation surface (see [`RunProbe`]). Returns pool counters,
/// including per-worker [`WorkerStats`].
pub fn run_sharded_probed<R, F, J, C>(
    jobs: usize,
    workers: usize,
    mk_worker: F,
    mut consume: C,
    probe: &RunProbe,
) -> PoolStats
where
    R: Send,
    F: Fn(usize) -> J + Sync,
    J: FnMut(usize) -> R,
    C: FnMut(usize, R) -> ControlFlow<()>,
{
    let workers = resolve_workers(workers).min(jobs.max(1));
    let shards = deal_shards(jobs, workers);
    let wstats: Vec<Mutex<WorkerStats>> = (0..workers)
        .map(|_| Mutex::new(WorkerStats::default()))
        .collect();
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let aborted = thread::scope(|s| {
        for w in 0..workers {
            let tx = tx.clone();
            let shards = &shards;
            let wstats = &wstats;
            let mk_worker = &mk_worker;
            s.spawn(move || {
                let mut job = mk_worker(w);
                let mut st = WorkerStats::default();
                // reorder-lint: allow(wall-clock, worker busy/idle accounting; scheduler telemetry never feeds report bytes)
                let born = probe.timed().then(Instant::now);
                while let Some(i) = next_job(w, workers, shards, &mut st) {
                    let r = if born.is_some() {
                        // reorder-lint: allow(wall-clock, per-task busy-time sample; telemetry-only)
                        let t = Instant::now();
                        let r = job(i);
                        st.busy_ns += t.elapsed().as_nanos() as u64;
                        probe.publish_busy(w, st.busy_ns);
                        r
                    } else {
                        job(i)
                    };
                    st.tasks += 1;
                    probe.done.fetch_add(1, Ordering::Relaxed);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                }
                if let Some(t0) = born {
                    st.wall_ns = t0.elapsed().as_nanos() as u64;
                    st.idle_ns = st.wall_ns.saturating_sub(st.busy_ns);
                }
                *wstats[w].lock().expect("stats poisoned") = st;
            });
        }
        drop(tx);

        // Streaming, order-restoring consumption: results arrive in
        // completion order; release them to `consume` in index order.
        // The pending buffer is bounded by the in-flight disorder
        // window — O(jobs) worst case, O(workers) typical.
        let mut pending: BTreeMap<usize, R> = BTreeMap::new();
        let mut next = 0usize;
        let mut aborted = false;
        'recv: for (i, r) in &rx {
            pending.insert(i, r);
            while let Some(r) = pending.remove(&next) {
                let flow = consume(next, r);
                next += 1;
                if flow.is_break() {
                    aborted = true;
                    break 'recv;
                }
            }
        }
        if aborted {
            // Stop the workers promptly: drain the queued shards (so
            // nothing further is popped) and close the channel (so
            // in-flight sends fail and the workers exit).
            for shard in &shards {
                shard.lock().expect("shard poisoned").clear();
            }
            drop(rx);
        } else {
            assert!(pending.is_empty(), "worker died mid-campaign");
            assert_eq!(next, jobs, "missing results");
        }
        aborted
    });

    collect_stats(workers, aborted, wstats)
}

/// Run `jobs` indices on `workers` threads, folding each result into a
/// **worker-local** state — see [`run_folded_probed`] for the full
/// contract. This convenience form attaches a [`RunProbe::disabled`].
pub fn run_folded<L, S, F, G>(
    jobs: usize,
    workers: usize,
    mk_worker: F,
    step: G,
) -> (Vec<S>, PoolStats)
where
    S: Send,
    F: Fn(usize) -> (L, S) + Sync,
    G: Fn(&mut L, &mut S, usize) + Sync,
{
    run_folded_probed(jobs, workers, mk_worker, step, &RunProbe::disabled())
}

/// Run `jobs` indices on `workers` threads, folding each result into a
/// **worker-local** state — the funnel-free alternative to
/// [`run_sharded_probed`] for consumers that don't need ordered
/// results.
///
/// `mk_worker` runs once on each worker thread — receiving the worker
/// index — and returns `(local, state)`: `local` is worker-local
/// scratch that never leaves the thread (e.g. a `!Send` simulator
/// pool), `state` is the fold accumulator handed back at the end.
/// `step` executes job `i`, folding its result into `state`. States
/// are returned in worker-index order, and `probe` is the live
/// observation surface (see [`RunProbe`]).
///
/// Work stealing makes the job→worker assignment nondeterministic, so
/// a caller needing deterministic totals must fold with an
/// order-independent (commutative, associative) operation —
/// `reorder-survey`'s aggregation layer is built on exactly that
/// contract, and the campaign determinism suite asserts it against
/// the ordered path byte for byte.
pub fn run_folded_probed<L, S, F, G>(
    jobs: usize,
    workers: usize,
    mk_worker: F,
    step: G,
    probe: &RunProbe,
) -> (Vec<S>, PoolStats)
where
    S: Send,
    F: Fn(usize) -> (L, S) + Sync,
    G: Fn(&mut L, &mut S, usize) + Sync,
{
    let workers = resolve_workers(workers).min(jobs.max(1));
    let shards = deal_shards(jobs, workers);
    let wstats: Vec<Mutex<WorkerStats>> = (0..workers)
        .map(|_| Mutex::new(WorkerStats::default()))
        .collect();
    let states: Vec<Mutex<Option<S>>> = (0..workers).map(|_| Mutex::new(None)).collect();

    thread::scope(|s| {
        for w in 0..workers {
            let shards = &shards;
            let wstats = &wstats;
            let states = &states;
            let mk_worker = &mk_worker;
            let step = &step;
            s.spawn(move || {
                let (mut local, mut state) = mk_worker(w);
                let mut st = WorkerStats::default();
                // reorder-lint: allow(wall-clock, worker busy/idle accounting; scheduler telemetry never feeds report bytes)
                let born = probe.timed().then(Instant::now);
                while let Some(i) = next_job(w, workers, shards, &mut st) {
                    if born.is_some() {
                        // reorder-lint: allow(wall-clock, per-task busy-time sample; telemetry-only)
                        let t = Instant::now();
                        step(&mut local, &mut state, i);
                        st.busy_ns += t.elapsed().as_nanos() as u64;
                        probe.publish_busy(w, st.busy_ns);
                    } else {
                        step(&mut local, &mut state, i);
                    }
                    st.tasks += 1;
                    probe.done.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(t0) = born {
                    st.wall_ns = t0.elapsed().as_nanos() as u64;
                    st.idle_ns = st.wall_ns.saturating_sub(st.busy_ns);
                }
                *wstats[w].lock().expect("stats poisoned") = st;
                *states[w].lock().expect("state poisoned") = Some(state);
            });
        }
    });

    let states = states
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("state poisoned")
                .expect("worker died before folding its state")
        })
        .collect();
    (states, collect_stats(workers, false, wstats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn consumes_every_job_in_order() {
        for workers in [1, 2, 4, 7] {
            let mut seen = Vec::new();
            let stats = run_sharded(
                100,
                workers,
                |_| |i| i * 3,
                |i, r| {
                    seen.push((i, r));
                    ControlFlow::Continue(())
                },
            );
            assert_eq!(seen.len(), 100);
            assert!(seen
                .iter()
                .enumerate()
                .all(|(k, &(i, r))| k == i && r == i * 3));
            assert!(stats.workers <= workers.max(1));
            assert!(!stats.aborted);
        }
    }

    #[test]
    fn zero_jobs_is_fine() {
        let stats = run_sharded(0, 4, |_| |i| i, |_, _: usize| panic!("no jobs to consume"));
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn workers_cap_at_job_count() {
        let stats = run_sharded(2, 16, |_| |i| i, |_, _| ControlFlow::Continue(()));
        assert_eq!(stats.workers, 2);
    }

    #[test]
    fn stealing_relieves_a_straggling_shard() {
        // With round-robin dealing over 2 workers, shard 0 gets all the
        // slow jobs (even indices). Worker 1 must steal some of them.
        let stats = run_sharded(
            40,
            2,
            |_| {
                |i| {
                    if i % 2 == 0 {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    i
                }
            },
            |_, _| ControlFlow::Continue(()),
        );
        if stats.workers == 2 {
            assert!(stats.steals > 0, "expected steals, got {stats:?}");
        }
    }

    #[test]
    fn break_aborts_promptly() {
        // Break on the third result: the pool must stop without
        // consuming the rest, and report the abort.
        let mut consumed = 0usize;
        let stats = run_sharded(
            500,
            4,
            |_| {
                |i| {
                    std::thread::sleep(Duration::from_micros(200));
                    i
                }
            },
            |_, _| {
                consumed += 1;
                if consumed == 3 {
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            },
        );
        assert!(stats.aborted);
        assert_eq!(consumed, 3);
    }

    #[test]
    fn resolve_workers_auto() {
        assert!(resolve_workers(0) >= 1);
        assert_eq!(resolve_workers(3), 3);
    }

    #[test]
    fn per_worker_stats_account_for_every_job() {
        let probe = RunProbe::new(true, 3);
        let stats = run_sharded_probed(60, 3, |_| |i| i, |_, _| ControlFlow::Continue(()), &probe);
        assert_eq!(stats.per_worker.len(), stats.workers);
        let tasks: u64 = stats.per_worker.iter().map(|s| s.tasks).sum();
        assert_eq!(tasks, 60, "every job attributed to exactly one worker");
        let steals: u64 = stats.per_worker.iter().map(|s| s.steals).sum();
        assert_eq!(steals, stats.steals);
        assert_eq!(probe.done.load(Ordering::Relaxed), 60);
        for st in &stats.per_worker {
            assert!(st.wall_ns >= st.busy_ns, "wall covers busy: {st:?}");
            assert_eq!(st.idle_ns, st.wall_ns - st.busy_ns);
        }
    }

    #[test]
    fn untimed_probe_reports_zero_ns() {
        let stats = run_sharded(20, 2, |_| |i| i, |_, _| ControlFlow::Continue(()));
        for st in &stats.per_worker {
            assert_eq!(st.busy_ns, 0);
            assert_eq!(st.wall_ns, 0);
        }
        // Task and steal counters are always on.
        assert_eq!(stats.per_worker.iter().map(|s| s.tasks).sum::<u64>(), 20);
    }

    #[test]
    fn mk_worker_receives_distinct_indices() {
        let seen: Vec<Mutex<u64>> = (0..4).map(|_| Mutex::new(0)).collect();
        let seen_ref = &seen;
        run_sharded(
            40,
            4,
            move |w| {
                *seen_ref[w].lock().unwrap() += 1;
                |i| i
            },
            |_, _| ControlFlow::Continue(()),
        );
        let counts: Vec<u64> = seen.iter().map(|m| *m.lock().unwrap()).collect();
        assert!(counts.iter().all(|&c| c <= 1), "index reuse: {counts:?}");
    }

    #[test]
    fn folded_covers_every_job_exactly_once() {
        for workers in [1, 2, 4, 7] {
            let (states, stats) = run_folded(
                100,
                workers,
                |_| ((), Vec::new()),
                |_, seen: &mut Vec<usize>, i| seen.push(i),
            );
            assert_eq!(states.len(), stats.workers);
            let mut all: Vec<usize> = states.into_iter().flatten().collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
            assert!(!stats.aborted);
        }
    }

    #[test]
    fn folded_zero_jobs_returns_initial_states() {
        let (states, stats) = run_folded(0, 4, |_| ((), 7u64), |_, _, _| panic!("no jobs"));
        assert_eq!(states, vec![7]);
        assert_eq!(stats.steals, 0);
    }

    #[test]
    fn folded_order_independent_sum_matches_serial() {
        // An order-independent fold (integer sum) must be invariant
        // across worker counts — the aggregation contract in miniature.
        let serial: u64 = (0..500u64).map(|i| i * i).sum();
        for workers in [1, 3, 8] {
            let (states, _) = run_folded(
                500,
                workers,
                |_| ((), 0u64),
                |_, acc, i| *acc += (i as u64) * (i as u64),
            );
            assert_eq!(states.into_iter().sum::<u64>(), serial);
        }
    }

    #[test]
    fn folded_steals_relieve_stragglers() {
        let (_, stats) = run_folded(
            40,
            2,
            |_| ((), ()),
            |_, _, i| {
                if i % 2 == 0 {
                    std::thread::sleep(Duration::from_millis(2));
                }
            },
        );
        if stats.workers == 2 {
            assert!(stats.steals > 0, "expected steals, got {stats:?}");
        }
    }

    #[test]
    fn folded_timed_probe_publishes_busy_ns() {
        let probe = RunProbe::new(true, 2);
        let (_, stats) = run_folded_probed(
            10,
            2,
            |_| ((), ()),
            |_, _, _| std::thread::sleep(Duration::from_micros(500)),
            &probe,
        );
        let busy: u64 = stats.per_worker.iter().map(|s| s.busy_ns).sum();
        assert!(busy > 0, "timed run must accumulate busy time");
        let published: u64 = (0..probe.slots()).map(|w| probe.busy_ns(w)).sum();
        assert_eq!(published, busy, "final published busy matches stats");
    }
}
