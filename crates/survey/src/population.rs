//! Layer 1: the population generator.
//!
//! The §IV-B population in `reorder_core::scenario::population` is a
//! canned 50-host mix. A campaign needs the same *shape* at arbitrary
//! scale, so this module draws each host independently from a
//! configurable [`PopulationModel`]: weighted OS personalities (which
//! imply IPID schemes), a weighted reordering mechanism (dummynet
//! swaps, link striping, multipath spraying, wireless ARQ), and
//! continuous distributions over loss, delay, jitter, balancer width
//! and served-object size.
//!
//! Determinism contract: host `i` of a model under master seed `s` is a
//! pure function of `(model, i, s)` — its RNG stream is labeled by the
//! host id, so neither the campaign size nor the worker count perturbs
//! any host's spec.

use rand::rngs::SmallRng;
use rand::Rng;
use reorder_core::scenario::{FaultClass, HostSpec, PathMechanism, SimVersion};
use reorder_netsim::rng as simrng;
use reorder_tcpstack::HostPersonality;
use std::time::Duration;

/// Inclusive-exclusive uniform draw that tolerates a degenerate range.
fn uniform_f64(rng: &mut SmallRng, (lo, hi): (f64, f64)) -> f64 {
    if hi <= lo {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

fn uniform_u64(rng: &mut SmallRng, (lo, hi): (u64, u64)) -> u64 {
    if hi <= lo {
        lo
    } else {
        rng.gen_range(lo..hi)
    }
}

/// Distributions a campaign draws its hosts from. All weights are
/// relative (they need not sum to 1). Every `(lo, hi)` range field is
/// **half-open** `[lo, hi)` — `hi` itself is never drawn — and a
/// degenerate range (`hi <= lo`) collapses to the constant `lo`.
#[derive(Debug, Clone)]
pub struct PopulationModel {
    /// OS personality mix, `(personality, weight)`.
    pub personalities: Vec<(HostPersonality, f64)>,
    /// Reordering-mechanism mix, `(mechanism, weight)`. Rates inside a
    /// `Dummynet` entry are ignored (drawn per host below); the other
    /// variants' parameters are used as-is.
    pub mechanisms: Vec<(PathMechanism, f64)>,
    /// Probability a dummynet path reorders at all.
    pub reorder_prob: f64,
    /// Forward adjacent-swap probability range `[lo, hi)` (when
    /// reordering).
    pub fwd_range: (f64, f64),
    /// Probability the reverse direction also reorders.
    pub rev_prob: f64,
    /// Reverse adjacent-swap probability range `[lo, hi)`.
    pub rev_range: (f64, f64),
    /// Packet-loss probability range `[lo, hi)` (per direction).
    pub loss_range: (f64, f64),
    /// One-way propagation delay range `[lo, hi)`, milliseconds.
    pub delay_ms: (u64, u64),
    /// Constant per-path extra delay range `[lo, hi)`, microseconds.
    pub jitter_us: (u64, u64),
    /// Probability the host sits behind a load balancer.
    pub balancer_prob: f64,
    /// Backend count range `[lo, hi)` for balanced hosts — the default
    /// `(2, 5)` draws 2–4 backends.
    pub backends: (u64, u64),
    /// Probability the served object is redirect-sized (defeats the
    /// transfer test, §III-E).
    pub small_object_prob: f64,
    /// Served object size for normal hosts, bytes.
    pub object_size: usize,
    /// Hostile-host rate in parts per million. Each host independently
    /// draws (from its own `survey.chaos.{id}` stream) whether it is
    /// hostile and, if so, which [`FaultClass`] it exhibits. Zero — the
    /// default — skips the chaos stream entirely, so chaos-free
    /// populations are bit-identical to pre-chaos ones.
    pub chaos_ppm: u32,
}

impl Default for PopulationModel {
    /// The 2002-flavored mix of `reorder_core::scenario::population`:
    /// mostly traditional global-IPID stacks, a sizable Linux 2.4
    /// contingent, a few random-IPID or hardened boxes; dummynet is the
    /// dominant reordering mechanism with a tail of §V causes.
    fn default() -> Self {
        PopulationModel {
            personalities: vec![
                (HostPersonality::freebsd4(), 0.34),
                (HostPersonality::linux22(), 0.18),
                (HostPersonality::linux24(), 0.18),
                (HostPersonality::windows2000(), 0.12),
                (HostPersonality::solaris8(), 0.12),
                (HostPersonality::openbsd3(), 0.04),
                (HostPersonality::hardened(), 0.02),
            ],
            mechanisms: vec![
                (PathMechanism::Dummynet, 0.82),
                (
                    PathMechanism::Striping {
                        links: 2,
                        bits_per_sec: 1_000_000_000,
                    },
                    0.06,
                ),
                (
                    PathMechanism::Multipath {
                        skew: Duration::from_micros(80),
                    },
                    0.06,
                ),
                (PathMechanism::WirelessArq { frame_error: 0.1 }, 0.06),
            ],
            reorder_prob: 0.4,
            fwd_range: (0.002, 0.25),
            rev_prob: 0.4,
            rev_range: (0.001, 0.08),
            loss_range: (0.0, 0.02),
            delay_ms: (5, 120),
            jitter_us: (100, 300),
            balancer_prob: 0.1,
            backends: (2, 5),
            small_object_prob: 0.15,
            object_size: 12 * 1024,
            chaos_ppm: 0,
        }
    }
}

impl PopulationModel {
    /// Pick from a weighted list. Panics on an empty or zero-weight
    /// list — a model bug worth failing loudly on.
    fn weighted<'a, T>(rng: &mut SmallRng, items: &'a [(T, f64)]) -> &'a T {
        let total: f64 = items.iter().map(|(_, w)| w.max(0.0)).sum();
        assert!(total > 0.0, "weighted pick over empty/zero-weight list");
        let mut x = rng.gen_range(0.0..total);
        for (item, w) in items {
            let w = w.max(0.0);
            if x < w {
                return item;
            }
            x -= w;
        }
        &items[items.len() - 1].0
    }

    /// Generate host `id`'s spec under `master_seed` — a pure function
    /// of `(self, id, master_seed)`.
    pub fn host(&self, id: u64, master_seed: u64) -> HostSpec {
        let mut rng: SmallRng = simrng::stream(master_seed, &format!("survey.host.{id}"));
        let personality = Self::weighted(&mut rng, &self.personalities).clone();
        let mechanism = *Self::weighted(&mut rng, &self.mechanisms);
        let reorders = rng.gen_bool(self.reorder_prob.clamp(0.0, 1.0));
        let fwd_reorder = if reorders {
            uniform_f64(&mut rng, self.fwd_range)
        } else {
            0.0
        };
        let rev_reorder = if reorders && rng.gen_bool(self.rev_prob.clamp(0.0, 1.0)) {
            uniform_f64(&mut rng, self.rev_range)
        } else {
            0.0
        };
        let loss = uniform_f64(&mut rng, self.loss_range);
        let delay = Duration::from_millis(uniform_u64(&mut rng, self.delay_ms));
        let jitter = Duration::from_micros(uniform_u64(&mut rng, self.jitter_us));
        let backends = if rng.gen_bool(self.balancer_prob.clamp(0.0, 1.0)) {
            uniform_u64(&mut rng, self.backends) as usize
        } else {
            1
        };
        let object_size = if rng.gen_bool(self.small_object_prob.clamp(0.0, 1.0)) {
            256
        } else {
            self.object_size
        };
        // Hostility lives on its own RNG stream so that turning chaos
        // on (or off) never perturbs any cooperative host's path draws.
        let fault = if self.chaos_ppm > 0 {
            let mut chaos: SmallRng = simrng::stream(master_seed, &format!("survey.chaos.{id}"));
            if chaos.gen_range(0u32..1_000_000) < self.chaos_ppm {
                Some(match chaos.gen_range(0u32..5) {
                    0 => FaultClass::Blackhole,
                    1 => FaultClass::RstReject,
                    2 => FaultClass::Tarpit {
                        delay: Duration::from_secs(30),
                    },
                    // 22 packets: enough to survive the amenability
                    // probe (~19 cumulative packets in reusing mode)
                    // but die inside the first measurement run, where
                    // the dead-tail rule classifies the host instead
                    // of letting a short campaign finish before the
                    // fault ever fires.
                    3 => FaultClass::DeadAfter { packets: 22 },
                    _ => FaultClass::HeavyLoss { rate: 0.45 },
                })
            } else {
                None
            }
        } else {
            None
        };
        HostSpec {
            name: format!("host{id:06}.survey"),
            personality,
            fwd_reorder,
            rev_reorder,
            loss,
            delay,
            jitter,
            backends,
            object_size,
            mechanism,
            fault,
            // Not drawn: the campaign engine stamps its configured
            // version on every spec (no RNG involved, so v1 and v2
            // populations are otherwise identical).
            sim_version: SimVersion::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_is_pure_in_id_and_seed() {
        let m = PopulationModel::default();
        let a = m.host(17, 9);
        let b = m.host(17, 9);
        assert_eq!(a.name, b.name);
        assert_eq!(a.fwd_reorder, b.fwd_reorder);
        assert_eq!(a.backends, b.backends);
        assert_eq!(a.mechanism, b.mechanism);
        // Different id or seed → (almost surely) different path.
        let c = m.host(18, 9);
        let d = m.host(17, 10);
        assert_ne!(a.name, c.name);
        assert!(a.delay != d.delay || a.fwd_reorder != d.fwd_reorder || a.loss != d.loss);
    }

    #[test]
    fn population_is_diverse() {
        let m = PopulationModel::default();
        let specs: Vec<_> = (0..400).map(|i| m.host(i, 5)).collect();
        assert!(specs.iter().any(|s| s.fwd_reorder > 0.0));
        assert!(specs.iter().any(|s| s.fwd_reorder == 0.0));
        assert!(specs.iter().any(|s| s.backends > 1));
        assert!(specs.iter().any(|s| s.object_size == 256));
        let mechanisms: std::collections::BTreeSet<_> =
            specs.iter().map(|s| s.mechanism.label()).collect();
        assert_eq!(mechanisms.len(), 4, "all mechanisms drawn: {mechanisms:?}");
        let personalities: std::collections::BTreeSet<_> =
            specs.iter().map(|s| s.personality.name).collect();
        assert!(personalities.len() >= 5, "mix covers most presets");
    }

    #[test]
    fn degenerate_ranges_collapse_to_point() {
        let m = PopulationModel {
            loss_range: (0.01, 0.01),
            delay_ms: (20, 20),
            jitter_us: (150, 150),
            reorder_prob: 0.0,
            balancer_prob: 0.0,
            small_object_prob: 0.0,
            ..PopulationModel::default()
        };
        let s = m.host(0, 1);
        assert_eq!(s.loss, 0.01);
        assert_eq!(s.delay, Duration::from_millis(20));
        assert_eq!(s.jitter, Duration::from_micros(150));
        assert_eq!(s.fwd_reorder, 0.0);
        assert_eq!(s.backends, 1);
    }

    #[test]
    fn chaos_off_draws_no_faults_and_matches_legacy_streams() {
        let clean = PopulationModel::default();
        assert_eq!(clean.chaos_ppm, 0);
        let specs: Vec<_> = (0..100).map(|i| clean.host(i, 7)).collect();
        assert!(specs.iter().all(|s| s.fault.is_none()));
        // Turning chaos on must not perturb any cooperative host's
        // draws: hostile hosts differ only by their fault.
        let chaotic = PopulationModel {
            chaos_ppm: 200_000,
            ..PopulationModel::default()
        };
        for (i, a) in specs.iter().enumerate() {
            let b = chaotic.host(i as u64, 7);
            assert_eq!(a.fwd_reorder, b.fwd_reorder);
            assert_eq!(a.delay, b.delay);
            assert_eq!(a.loss, b.loss);
            assert_eq!(a.backends, b.backends);
            assert_eq!(a.object_size, b.object_size);
        }
    }

    #[test]
    fn chaos_mix_hits_every_fault_class_at_roughly_the_asked_rate() {
        let m = PopulationModel {
            chaos_ppm: 200_000, // 20%
            ..PopulationModel::default()
        };
        let specs: Vec<_> = (0..1000).map(|i| m.host(i, 11)).collect();
        let hostile = specs.iter().filter(|s| s.fault.is_some()).count();
        assert!(
            (120..=280).contains(&hostile),
            "expected ~200 hostile hosts, got {hostile}"
        );
        let classes: std::collections::BTreeSet<_> = specs
            .iter()
            .filter_map(|s| s.fault.as_ref().map(|f| f.label()))
            .collect();
        assert_eq!(classes.len(), 5, "all fault classes drawn: {classes:?}");
        // Purity extends to the chaos stream.
        assert_eq!(specs[3].fault, m.host(3, 11).fault);
    }

    #[test]
    #[should_panic(expected = "zero-weight")]
    fn empty_weights_panic() {
        let mut rng: SmallRng = simrng::stream(1, "t");
        let empty: Vec<(u8, f64)> = Vec::new();
        PopulationModel::weighted(&mut rng, &empty);
    }
}
