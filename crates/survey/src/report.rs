//! Layer 4b: report sinks — one JSONL line per host.
//!
//! Hand-rolled JSON (the environment has no serde): stable key order,
//! fixed-precision floats, minimal string escaping. One line per host
//! makes campaign output streamable and diffable — byte-identical
//! output across reruns and worker counts is an engine invariant that
//! the determinism tests assert on these lines.

use crate::pipeline::HostReport;
use reorder_core::metrics::ReorderEstimate;
use std::fmt::Write as _;

/// Escape a string for a JSON value (ASCII control chars, quotes,
/// backslashes).
fn escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn estimate(e: &ReorderEstimate, out: &mut String) {
    let _ = write!(
        out,
        "{{\"reordered\":{},\"total\":{},\"rate\":{:.6}}}",
        e.reordered,
        e.total,
        e.rate()
    );
}

/// Serialize one host report as a single JSON line (no trailing
/// newline).
pub fn jsonl_line(r: &HostReport) -> String {
    let mut s = String::with_capacity(256);
    let _ = write!(s, "{{\"id\":{},\"name\":", r.id);
    escape(&r.spec.name, &mut s);
    s.push_str(",\"personality\":");
    escape(r.spec.personality.name, &mut s);
    s.push_str(",\"mechanism\":");
    escape(r.spec.mechanism.label(), &mut s);
    let _ = write!(
        s,
        ",\"backends\":{},\"object_size\":{},\"verdict\":",
        r.spec.backends, r.spec.object_size
    );
    match r.verdict {
        Some(v) => escape(v.label(), &mut s),
        None => s.push_str("null"),
    }
    s.push_str(",\"technique\":");
    escape(r.technique, &mut s);
    s.push_str(",\"fwd\":");
    estimate(&r.fwd, &mut s);
    s.push_str(",\"rev\":");
    estimate(&r.rev, &mut s);
    s.push_str(",\"baseline_rev\":");
    match &r.baseline_rev {
        Some(b) => estimate(b, &mut s),
        None => s.push_str("null"),
    }
    if !r.gap_points.is_empty() {
        s.push_str(",\"gaps\":[");
        for (i, (gap, est)) in r.gap_points.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{{\"gap_us\":{gap},\"fwd\":");
            estimate(est, &mut s);
            s.push('}');
        }
        s.push(']');
    }
    let _ = write!(
        s,
        ",\"failures\":{},\"outcome\":\"{}\",\"status\":\"{}\"}}",
        r.failures,
        r.outcome,
        if r.reachable { "ok" } else { "unreachable" }
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::HostOutcome;
    use reorder_core::scenario::HostSpec;
    use reorder_core::techniques::IpidVerdict;
    use reorder_tcpstack::HostPersonality;

    fn report() -> HostReport {
        HostReport {
            id: 3,
            spec: HostSpec::clean("host000003.survey", HostPersonality::freebsd4()),
            verdict: Some(IpidVerdict::Amenable),
            technique: "dual",
            fwd: ReorderEstimate::new(2, 40),
            rev: ReorderEstimate::new(0, 40),
            baseline_rev: Some(ReorderEstimate::new(1, 8)),
            gap_points: vec![(0, ReorderEstimate::new(2, 10))],
            failures: 0,
            reachable: true,
            outcome: HostOutcome::Complete,
            events: 0,
        }
    }

    #[test]
    fn line_shape_is_stable() {
        let line = jsonl_line(&report());
        assert!(line.starts_with("{\"id\":3,\"name\":\"host000003.survey\""));
        assert!(line.contains("\"verdict\":\"amenable\""));
        assert!(line.contains("\"fwd\":{\"reordered\":2,\"total\":40,\"rate\":0.050000}"));
        assert!(line.contains("\"baseline_rev\":{\"reordered\":1,\"total\":8,\"rate\":0.125000}"));
        assert!(line.contains("\"gaps\":[{\"gap_us\":0,"));
        assert!(line.ends_with("\"failures\":0,\"outcome\":\"complete\",\"status\":\"ok\"}"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn nulls_for_missing_parts() {
        let mut r = report();
        r.verdict = None;
        r.baseline_rev = None;
        r.gap_points.clear();
        r.reachable = false;
        let line = jsonl_line(&r);
        assert!(line.contains("\"verdict\":null"));
        assert!(line.contains("\"baseline_rev\":null"));
        assert!(!line.contains("\"gaps\""));
        assert!(line.contains("\"status\":\"unreachable\""));
    }

    #[test]
    fn escaping() {
        let mut out = String::new();
        escape("a\"b\\c\nd\u{1}", &mut out);
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }
}
