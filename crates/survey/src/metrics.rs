//! Campaign-level telemetry: per-worker [`WorkerTelemetry`] collected
//! by the engine, the schema-versioned metrics JSON document the CLI's
//! `--metrics` flag emits, and the `--progress` heartbeat line.
//!
//! The document is hand-rolled JSON like every other sink in this
//! workspace (no serde offline) and deterministic *in shape*: keys,
//! their order, and the integer counters are pinned by the schema
//! golden test, while wall-clock durations are declared
//! nondeterministic output and never feed back into campaign reports.
//! Merging is exact — [`CampaignTelemetry::merged`] folds the workers'
//! states with [`WorkerTelemetry::merge`], so any partition of hosts
//! across workers or shards produces identical merged counters.

use reorder_core::telemetry::{TelemetryMode, WorkerTelemetry};

/// Version tag of the metrics JSON document. Bump on any
/// key/shape change; consumers must check it before parsing further.
pub const METRICS_SCHEMA: &str = "reorder.metrics/1";

/// Telemetry a finished campaign hands back: one [`WorkerTelemetry`]
/// per worker (index order), tagged with the mode that recorded it.
/// Empty (no workers) when the campaign ran with
/// [`TelemetryMode::Off`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignTelemetry {
    /// Mode the campaign recorded under.
    pub mode: TelemetryMode,
    /// Per-worker telemetry, in worker-index order.
    pub per_worker: Vec<WorkerTelemetry>,
    /// Engine/collector-side telemetry that belongs to no single
    /// worker (e.g. the ordered path's `agg.absorbs`, the final
    /// shard-merge's `agg.merges`). Folded into
    /// [`CampaignTelemetry::merged`].
    pub campaign: WorkerTelemetry,
}

impl CampaignTelemetry {
    /// The `Off`-mode value: nothing recorded.
    pub fn disabled() -> Self {
        CampaignTelemetry::default()
    }

    /// Exact merge of every worker's telemetry (counters add, span
    /// moments and sketches merge) — independent of worker order and
    /// of how hosts were partitioned.
    pub fn merged(&self) -> WorkerTelemetry {
        let mut all = self.campaign.clone();
        for tel in &self.per_worker {
            all.merge(tel);
        }
        all
    }

    /// Render the schema-versioned metrics document. `hosts`, `seed`,
    /// `events` and `steals` come from the campaign outcome; `wall_s`
    /// is the measured campaign wall time (nondeterministic, like
    /// every duration in here).
    pub fn to_json(&self, hosts: u64, seed: u64, events: u64, steals: u64, wall_s: f64) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"schema\":\"{METRICS_SCHEMA}\",\"mode\":\"{}\",\"hosts\":{hosts},\
             \"workers\":{},\"seed\":{seed},\"wall_s\":{wall_s:.9},\"events\":{events},\
             \"steals\":{steals},\"merged\":",
            self.mode,
            self.per_worker.len(),
        ));
        out.push_str(&self.merged().to_json());
        out.push_str(",\"per_worker\":[");
        for (i, tel) in self.per_worker.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&tel.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// One `--progress` heartbeat line (without trailing newline):
/// hosts done, completion rate, ETA, and per-worker utilization
/// (busy/elapsed, from the scheduler probe) when timing is on. Pure
/// formatting — testable without a clock.
pub fn progress_line(done: u64, total: u64, elapsed_s: f64, busy_ns: &[u64]) -> String {
    let pct = if total > 0 {
        100.0 * done as f64 / total as f64
    } else {
        100.0
    };
    let rate = if elapsed_s > 0.0 {
        done as f64 / elapsed_s
    } else {
        0.0
    };
    let eta = if rate > 0.0 {
        (total.saturating_sub(done)) as f64 / rate
    } else {
        f64::INFINITY
    };
    let mut line = format!(
        "progress: {done}/{total} hosts ({pct:.1}%) | {rate:.1} hosts/s | eta {}",
        if eta.is_finite() {
            format!("{eta:.1}s")
        } else {
            "?".to_string()
        }
    );
    if !busy_ns.is_empty() && elapsed_s > 0.0 {
        line.push_str(" | util");
        let shown = busy_ns.len().min(8);
        for &ns in &busy_ns[..shown] {
            let util = (ns as f64 / 1e9 / elapsed_s * 100.0).min(100.0);
            line.push_str(&format!(" {util:.0}%"));
        }
        if busy_ns.len() > shown {
            line.push('…');
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(events: u64, span_s: f64) -> WorkerTelemetry {
        let mut tel = WorkerTelemetry::new();
        tel.count("netsim.events", events);
        tel.record_span("host", TelemetryMode::Summary, span_s);
        tel
    }

    #[test]
    fn merged_is_partition_invariant() {
        let tel = CampaignTelemetry {
            mode: TelemetryMode::Summary,
            per_worker: vec![worker(10, 0.5), worker(20, 1.5), worker(5, 1.0)],
            ..CampaignTelemetry::default()
        };
        let swapped = CampaignTelemetry {
            mode: TelemetryMode::Summary,
            per_worker: vec![worker(5, 1.0), worker(10, 0.5), worker(20, 1.5)],
            ..CampaignTelemetry::default()
        };
        assert_eq!(tel.merged(), swapped.merged());
        assert_eq!(tel.merged().counter("netsim.events"), 35);
        assert_eq!(tel.merged().span_stats("host").unwrap().count(), 3);
    }

    #[test]
    fn document_has_required_keys() {
        let tel = CampaignTelemetry {
            mode: TelemetryMode::Summary,
            per_worker: vec![worker(10, 0.5), worker(20, 1.5)],
            ..CampaignTelemetry::default()
        };
        let json = tel.to_json(30, 7, 30, 2, 1.25);
        for key in [
            "\"schema\":\"reorder.metrics/1\"",
            "\"mode\":\"summary\"",
            "\"hosts\":30",
            "\"workers\":2",
            "\"seed\":7",
            "\"wall_s\":1.250000000",
            "\"events\":30",
            "\"steals\":2",
            "\"merged\":{",
            "\"per_worker\":[",
            "\"counters\":{",
            "\"spans\":{",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }

    #[test]
    fn progress_line_shape() {
        let line = progress_line(42, 100, 2.0, &[1_900_000_000, 1_000_000_000]);
        assert!(line.starts_with("progress: 42/100 hosts (42.0%)"), "{line}");
        assert!(line.contains("21.0 hosts/s"), "{line}");
        assert!(line.contains("eta 2.8s"), "{line}");
        assert!(line.contains("util 95% 50%"), "{line}");
    }

    #[test]
    fn progress_line_degenerate_inputs() {
        let line = progress_line(0, 10, 0.0, &[]);
        assert!(line.contains("eta ?"), "{line}");
        assert!(!line.contains("util"), "{line}");
        // Never divide by a zero total.
        let line = progress_line(0, 0, 1.0, &[]);
        assert!(line.contains("(100.0%)"), "{line}");
    }
}
